package strategy

import (
	"recoveryblocks/internal/dist"
	"recoveryblocks/internal/prpmodel"
	"recoveryblocks/internal/rbmodel"
	"recoveryblocks/internal/sim"
	"recoveryblocks/internal/stats"
	"recoveryblocks/internal/synch"
)

// prpWarmup is the simulated time discarded before PRP probes; it must
// dominate the relaxation time of the recovery-line renewal process (the
// shipped grids keep E[X] below a few time units).
const prpWarmup = 100

// Replicate counts for the PRP batch-means estimators: probes within one run
// are autocorrelated, so the standard error comes from independent replicate
// means and the critical value is Student-t at replicates−1 degrees of
// freedom. The two harnesses historically use different batch counts — both
// values are pinned by fixed-seed goldens.
const (
	prpScenarioReplicates = 12
	prpXValReplicates     = 24
)

// prpStrategy is Section 4: pseudo recovery points. When process P_i
// establishes a recovery point, every other process implants a PRP, so a
// pseudo recovery line always exists and the rollback distance is bounded by
// sup{y_1..y_n} instead of the unbounded propagation of asynchronous RBs.
type prpStrategy struct{}

func (prpStrategy) Name() Name { return PRP }

func (prpStrategy) Describe() string {
	return "pseudo recovery points (Section 4): every checkpoint implants PRPs in the other processes, bounding rollback by E[max y_i] at (n-1)*t_r overhead per recovery point"
}

func (prpStrategy) Validate(w Workload) error { return validateRates(w.Mu) }

// Price: every RP event (rate Σμ) saves n states (the RP plus n−1 implanted
// PRPs); an error rolls back a bounded distance — the victim's own RP age
// 1/μ_i when local, E[max_i Exp(μ_i)] when propagated. Deadline risk is the
// probability the bound itself exceeds the deadline, P(max_i y_i > d).
func (prpStrategy) Price(w Workload) (Metrics, error) {
	cfg := prpmodel.Config{Mu: append([]float64(nil), w.Mu...), SaveCost: w.CheckpointCost}
	bound, err := cfg.RollbackDistanceBound()
	if err != nil {
		return Metrics{}, err
	}
	n := float64(cfg.N())
	localAvg := 0.0
	for i := range w.Mu {
		d, err := cfg.MeanRollbackToPRL(i)
		if err != nil {
			return Metrics{}, err
		}
		localAvg += d
	}
	localAvg /= n
	roll := w.PLocal*localAvg + (1-w.PLocal)*bound
	m := Metrics{
		Strategy: PRP,
		// Implants in the other n−1 processes (cfg.TimeOverheadRate) plus
		// each process's own saves: t_r·Σμ in total.
		CheckpointRate:   cfg.TimeOverheadRate() + w.CheckpointCost*cfg.RPRate()/n,
		RollbackRate:     w.ErrorRate * roll,
		MeanRollback:     roll,
		DeadlineMissProb: -1,
	}
	if w.Deadline > 0 {
		m.DeadlineMissProb = 1 - dist.MaxExpCDF(w.Mu, w.Deadline)
	}
	m.OverheadRate = m.CheckpointRate + m.SyncLossRate + m.RollbackRate
	return m, nil
}

// Model: the stationary identities PASTA buys — the propagated-error
// rollback distance equals E[max_i Exp(μ_i)] (the bound, met with equality)
// and the local-error distance equals the uniform-victim mean of the RP
// ages, avg(1/μ_i). References are included only for the error classes the
// workload's PLocal makes observable.
func (prpStrategy) Model(w Workload) (References, error) {
	refs := References{}
	if w.PLocal < 1 {
		bound, err := synch.MeanMax(w.Mu)
		if err != nil {
			return nil, err
		}
		refs["prp.propagated"] = bound
	}
	if w.PLocal > 0 {
		invMu := 0.0
		for _, m := range w.Mu {
			invMu += 1 / m
		}
		refs["prp.local"] = invMu / float64(w.N())
	}
	return refs, nil
}

// Simulate runs the Section 4 simulator as batch means over independent
// replicates on disjoint substream families (probes within one run are
// autocorrelated).
func (prpStrategy) Simulate(w Workload) ([]Measurement, error) {
	p := w.Params()
	per := w.Reps / prpScenarioReplicates
	if per < 1 {
		per = 1
	}
	var local, propagated stats.Welford
	for r := 0; r < prpScenarioReplicates; r++ {
		sr, err := sim.SimulatePRP(p, sim.PRPOptions{
			Probes:  per,
			Seed:    w.Seed + seedOffScenarioPRP + int64(r),
			Warmup:  prpWarmup,
			PLocal:  w.PLocal,
			Workers: w.Workers,
		})
		if err != nil {
			return nil, err
		}
		if w.PLocal > 0 {
			local.Add(sr.LocalDistance.Mean())
		}
		if w.PLocal < 1 {
			propagated.Add(sr.PropagatedDistance.Mean())
		}
	}
	var ms []Measurement
	if w.PLocal < 1 {
		ms = append(ms, Measurement{Name: "prp.propagated", Kind: KindBatchT, W: propagated})
	}
	if w.PLocal > 0 {
		ms = append(ms, Measurement{Name: "prp.local", Kind: KindBatchT, W: local})
	}
	return ms, nil
}

// XValChecks cross-validates the Section 4 simulator against the stationary
// identities: the propagated and local rollback distances (as in Simulate,
// at the harness's own replicate count and a fixed PLocal = 0.5), plus the
// asynchronous rollback distance — the age of the recovery-line renewal
// process, E[X²]/(2·E[X]) from the exact chain's moments. Cells without
// interacting processes record nothing.
func (prpStrategy) XValChecks(w Workload, rec *Recorder) error {
	if w.N() < 2 || !w.HasInteractions() {
		return nil
	}
	p := w.Params()
	per := w.Reps / prpXValReplicates
	if per < 1 {
		per = 1
	}
	var local, propagated, async stats.Welford
	for r := 0; r < prpXValReplicates; r++ {
		sr, err := sim.SimulatePRP(p, sim.PRPOptions{
			Probes:  per,
			Seed:    w.Seed + seedOffXValPRP + int64(r),
			Warmup:  prpWarmup,
			PLocal:  0.5,
			Workers: w.Workers,
		})
		if err != nil {
			return err
		}
		local.Add(sr.LocalDistance.Mean())
		propagated.Add(sr.PropagatedDistance.Mean())
		async.Add(sr.AsyncDistance.Mean())
	}

	bound, err := synch.MeanMax(w.Mu)
	if err != nil {
		return err
	}
	rec.Add("prp.propagated", KindBatchT, bound, propagated)

	invMu := 0.0
	for _, m := range w.Mu {
		invMu += 1 / m
	}
	invMu /= float64(w.N())
	rec.Add("prp.local", KindBatchT, invMu, local)

	model, err := rbmodel.NewAsync(p)
	if err != nil {
		return err
	}
	m1, m2, err := model.MomentsX()
	if err != nil {
		return err
	}
	rec.Add("prp.asyncAge", KindBatchT, m2/(2*m1), async)
	return nil
}
