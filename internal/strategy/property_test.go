package strategy

import (
	"fmt"
	"math"
	"testing"

	"recoveryblocks/internal/dist"
)

// Property-based monotonicity suite: for EVERY registered discipline, over
// randomized workloads, the exact price must respect the economics the paper's
// models encode —
//
//   - the total overhead rate is non-decreasing in the system error rate θ
//     (more errors can never make recovery cheaper),
//   - the total overhead rate is non-decreasing under uniform scaling of the
//     interaction matrix λ (more coupling can never shrink rollback or
//     checkpoint structure costs),
//   - the deadline-miss probability is non-increasing in the deadline T
//     (more time can never increase the miss risk).
//
// The suite is registry-driven: a discipline registered tomorrow is swept
// automatically, and a pricing model that violates any of these orderings
// fails here long before a corpus sweep would notice the symptom.

// propTol absorbs the numeric noise of the chain solves and quadratures; the
// orderings themselves are exact, so violations beyond this are model bugs.
const propTol = 1e-9

// drawPropertyWorkload draws one randomized valid workload from the stream.
// Fields every discipline prices are always set; EveryK stays within its
// bound; the error rate and deadline are overwritten by the sweeps.
func drawPropertyWorkload(rng *dist.Stream) Workload {
	n := 2 + rng.Intn(3) // 2..4 processes
	mu := make([]float64, n)
	for i := range mu {
		mu[i] = 0.5 + 2*rng.Float64()
	}
	lambda := uniformMatrix(n, 0.2+1.5*rng.Float64())
	return Workload{
		Name:           "prop",
		Mu:             mu,
		Lambda:         lambda,
		SyncInterval:   0.5 + 1.5*rng.Float64(),
		EveryK:         1 + rng.Intn(4),
		CheckpointCost: 0.01 + 0.1*rng.Float64(),
		Deadline:       1 + 4*rng.Float64(),
		ErrorRate:      0.01 + 0.3*rng.Float64(),
		PLocal:         rng.Float64(),
		Reps:           4000,
		Seed:           1983,
		Workers:        1,
	}
}

// scaleLambda returns the workload with every interaction rate multiplied by
// the factor.
func scaleLambda(w Workload, f float64) Workload {
	out := w
	out.Lambda = make([][]float64, len(w.Lambda))
	for i := range w.Lambda {
		out.Lambda[i] = append([]float64(nil), w.Lambda[i]...)
		for j := range out.Lambda[i] {
			out.Lambda[i][j] *= f
		}
	}
	return out
}

// priceAll evaluates one strategy along a workload sequence and returns the
// metrics, failing the test on any pricing error (every drawn workload is
// valid by construction).
func priceAll(t *testing.T, st Strategy, ws []Workload) []Metrics {
	t.Helper()
	out := make([]Metrics, len(ws))
	for i, w := range ws {
		if err := st.Validate(w); err != nil {
			t.Fatalf("%s rejected a drawn workload: %v", st.Name(), err)
		}
		m, err := st.Price(w)
		if err != nil {
			t.Fatalf("%s failed to price %s: %v", st.Name(), describeWorkload(w), err)
		}
		out[i] = m
	}
	return out
}

func describeWorkload(w Workload) string {
	return fmt.Sprintf("n=%d mu=%v lambda00=%v tau=%v k=%d tr=%v theta=%v T=%v",
		w.N(), w.Mu, w.Lambda[0][1], w.SyncInterval, w.EveryK, w.CheckpointCost, w.ErrorRate, w.Deadline)
}

func TestPriceOverheadNonDecreasingInErrorRate(t *testing.T) {
	thetas := []float64{0, 0.01, 0.05, 0.1, 0.2, 0.5, 1}
	for _, name := range Names() {
		st, _ := Lookup(name)
		t.Run(string(name), func(t *testing.T) {
			for trial := 0; trial < 20; trial++ {
				base := drawPropertyWorkload(dist.Substream(1983, trial))
				ws := make([]Workload, len(thetas))
				for i, theta := range thetas {
					ws[i] = base
					ws[i].ErrorRate = theta
				}
				ms := priceAll(t, st, ws)
				for i := 1; i < len(ms); i++ {
					if ms[i].OverheadRate < ms[i-1].OverheadRate-propTol {
						t.Fatalf("trial %d: overhead fell from %.12g to %.12g as theta rose %v -> %v (%s)",
							trial, ms[i-1].OverheadRate, ms[i].OverheadRate, thetas[i-1], thetas[i], describeWorkload(base))
					}
				}
			}
		})
	}
}

func TestPriceOverheadNonDecreasingInInteractionScale(t *testing.T) {
	scales := []float64{0, 0.25, 0.5, 1, 2, 4}
	for _, name := range Names() {
		st, _ := Lookup(name)
		t.Run(string(name), func(t *testing.T) {
			for trial := 0; trial < 20; trial++ {
				base := drawPropertyWorkload(dist.Substream(2024, trial))
				ws := make([]Workload, len(scales))
				for i, f := range scales {
					ws[i] = scaleLambda(base, f)
				}
				ms := priceAll(t, st, ws)
				for i := 1; i < len(ms); i++ {
					if ms[i].OverheadRate < ms[i-1].OverheadRate-propTol {
						t.Fatalf("trial %d: overhead fell from %.12g to %.12g as lambda scale rose %v -> %v (%s)",
							trial, ms[i-1].OverheadRate, ms[i].OverheadRate, scales[i-1], scales[i], describeWorkload(base))
					}
				}
			}
		})
	}
}

func TestPriceDeadlineMissNonIncreasingInDeadline(t *testing.T) {
	deadlines := []float64{0.5, 1, 2, 4, 8, 16}
	for _, name := range Names() {
		st, _ := Lookup(name)
		t.Run(string(name), func(t *testing.T) {
			for trial := 0; trial < 20; trial++ {
				base := drawPropertyWorkload(dist.Substream(777, trial))
				ws := make([]Workload, len(deadlines))
				for i, d := range deadlines {
					ws[i] = base
					ws[i].Deadline = d
				}
				ms := priceAll(t, st, ws)
				for i, m := range ms {
					if m.DeadlineMissProb < -propTol || m.DeadlineMissProb > 1+propTol {
						t.Fatalf("trial %d: miss probability %v outside [0, 1] at deadline %v", trial, m.DeadlineMissProb, deadlines[i])
					}
				}
				for i := 1; i < len(ms); i++ {
					if ms[i].DeadlineMissProb > ms[i-1].DeadlineMissProb+propTol {
						t.Fatalf("trial %d: miss probability rose from %.12g to %.12g as deadline rose %v -> %v (%s)",
							trial, ms[i-1].DeadlineMissProb, ms[i].DeadlineMissProb, deadlines[i-1], deadlines[i], describeWorkload(base))
					}
				}
			}
		})
	}
}

// TestPriceNoDeadlineUsesSentinel pins the -1 sentinel across the whole
// catalog: a workload without a deadline prices with DeadlineMissProb = -1,
// never a stale probability.
func TestPriceNoDeadlineUsesSentinel(t *testing.T) {
	for _, name := range Names() {
		st, _ := Lookup(name)
		w := drawPropertyWorkload(dist.Substream(55, 0))
		w.Deadline = 0
		m, err := st.Price(w)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.DeadlineMissProb != -1 {
			t.Errorf("%s: DeadlineMissProb = %v without a deadline, want the -1 sentinel", name, m.DeadlineMissProb)
		}
	}
}

// TestPriceOverheadDecomposes pins the Metrics contract the advisor ranks on:
// the total is exactly the sum of its three components, and each component is
// a nonnegative finite rate.
func TestPriceOverheadDecomposes(t *testing.T) {
	for _, name := range Names() {
		st, _ := Lookup(name)
		for trial := 0; trial < 10; trial++ {
			w := drawPropertyWorkload(dist.Substream(4242, trial))
			m, err := st.Price(w)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for _, c := range []struct {
				label string
				v     float64
			}{
				{"checkpoint", m.CheckpointRate},
				{"sync-loss", m.SyncLossRate},
				{"rollback", m.RollbackRate},
			} {
				if c.v < 0 || math.IsNaN(c.v) || math.IsInf(c.v, 0) {
					t.Fatalf("%s trial %d: %s rate %v not a nonnegative finite rate (%s)",
						name, trial, c.label, c.v, describeWorkload(w))
				}
			}
			sum := m.CheckpointRate + m.SyncLossRate + m.RollbackRate
			if math.Abs(m.OverheadRate-sum) > propTol*math.Max(1, sum) {
				t.Fatalf("%s trial %d: OverheadRate %v != components sum %v", name, trial, m.OverheadRate, sum)
			}
		}
	}
}
