package strategy

import (
	"fmt"
	"sort"
	"strings"
)

// The registry. Registration order is the canonical catalog order — the
// paper's three disciplines in section order, then extensions — and every
// registry reader (the scenario engine's dispatch, `rbrepro strategies`,
// the completeness test) iterates it deterministically.
var registry struct {
	order []Strategy
	byKey map[Name]Strategy
}

// Register adds a discipline to the registry. It panics on a duplicate or
// empty name: registration happens once, at init, and a collision is a
// programming error that must not survive to runtime dispatch.
func Register(s Strategy) {
	name := s.Name()
	if name == "" {
		panic("strategy: Register with empty name")
	}
	if registry.byKey == nil {
		registry.byKey = make(map[Name]Strategy)
	}
	if _, dup := registry.byKey[name]; dup {
		panic(fmt.Sprintf("strategy: duplicate registration of %q", name))
	}
	registry.byKey[name] = s
	registry.order = append(registry.order, s)
}

func init() {
	// Canonical order: the paper's disciplines by section, then extensions.
	Register(asyncStrategy{})
	Register(syncStrategy{})
	Register(prpStrategy{})
	Register(everyKStrategy{})
}

// All returns every registered discipline in registration order. The slice
// is a copy; callers may reorder it.
func All() []Strategy {
	return append([]Strategy(nil), registry.order...)
}

// Names returns the registered names in registration order.
func Names() []Name {
	out := make([]Name, len(registry.order))
	for i, s := range registry.order {
		out[i] = s.Name()
	}
	return out
}

// Lookup resolves a registered discipline by name.
func Lookup(name Name) (Strategy, bool) {
	s, ok := registry.byKey[name]
	return s, ok
}

// Parse validates a user-supplied strategy name (spec files, the -strategy
// CLI flag) against the registry. The error lists the catalog so a typo is
// self-diagnosing.
func Parse(s string) (Name, error) {
	if _, ok := registry.byKey[Name(s)]; ok {
		return Name(s), nil
	}
	return "", fmt.Errorf("strategy: unknown strategy %q (registered: %s)", s, catalogList())
}

// catalogList renders the registered names for error messages.
func catalogList() string {
	names := Names()
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = string(n)
	}
	sort.Strings(parts)
	return strings.Join(parts, ", ")
}
