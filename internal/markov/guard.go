package markov

// This file hosts the recovery-block ladder around the absorption solves: the
// engine applies the paper's primary/alternate/acceptance-test discipline to
// its own numerics. Every moment solve runs as a guard.Block whose acceptance
// test checks finiteness, moment consistency, and — for the direct routes —
// a normwise residual bound; on rejection the solve falls through
// dense-LU → sparse-GS → uniformization → MC-estimate. The healthy path is
// byte-identical to the historical direct routes (same routines, same
// routing cutoff); the ladder only changes what happens when a route fails,
// is rejected, or is force-failed by an injected chaos fault.

import (
	"context"
	"math"

	"recoveryblocks/internal/dist"
	"recoveryblocks/internal/guard"
	"recoveryblocks/internal/obs"
)

const (
	// residualRelTol bounds the accepted normwise relative residual
	// ‖Q_T·h − rhs‖∞ / (‖Q_T‖∞·‖h‖∞ + ‖rhs‖∞) of the direct routes. Both a
	// backward-stable LU and the gsTol-converged sparse solve sit orders of
	// magnitude below it; crossing it means the returned vector does not
	// solve the system it claims to.
	residualRelTol = 1e-8
	// maxUnifSteps caps the uniformization fallback's DTMC step count,
	// turning a non-decaying transient mass (a structurally broken chain
	// reached with earlier rungs force-skipped) into a typed error instead
	// of a hang.
	maxUnifSteps = 2_000_000
	// unifMassTol is the relative transient-mass floor at which the
	// uniformization sums are considered converged.
	unifMassTol = 1e-13
	// mcMomentReps and mcMomentSeed parameterize the last-resort jump-chain
	// estimate. The seed is a fixed internal constant: the route draws from
	// its own substreams, so the estimate is deterministic for a given chain
	// regardless of caller RNG state or worker count.
	mcMomentReps  = 65536
	mcMomentSeed  = 8_675_309
	mcMomentJumps = 1 << 20 // per-replication jump budget
)

// momentSolution is the value flowing through the absorption-moment ladder:
// the two moments plus, for the direct routes, the full solution vectors the
// acceptance test checks residuals on (nil for the scalar-only routes).
type momentSolution struct {
	m1, m2 float64
	h, h2  []float64
}

// AbsorptionMomentsCtx is AbsorptionMoments under an explicit context: the
// context carries cancellation, any injected guard.FaultSpec, and the
// fallback guard.Recorder. The solve runs as a recovery block — primary and
// alternates ordered dense-LU → sparse-GS → uniformization → MC-estimate
// (starting at the rung the state-space size routes to), each candidate
// result vetted by the acceptance test before the caller sees it.
func (c *CTMC) AbsorptionMomentsCtx(ctx context.Context, start int) (m1, m2 float64, err error) {
	if c.absorbing[start] {
		return 0, 0, nil
	}
	idx, order := c.transientIndex()
	dense := guard.Attempt[momentSolution]{Name: "dense-lu", Run: func(context.Context) (momentSolution, error) {
		h, h2, err := c.momentVectorsDense(idx, order)
		if err != nil {
			return momentSolution{}, err
		}
		k := idx[start]
		return momentSolution{m1: h[k], m2: h2[k], h: h, h2: h2}, nil
	}}
	sparse := guard.Attempt[momentSolution]{Name: "sparse-gs", Run: func(context.Context) (momentSolution, error) {
		h, h2, err := c.momentVectorsSparse(idx, order)
		if err != nil {
			return momentSolution{}, err
		}
		k := idx[start]
		return momentSolution{m1: h[k], m2: h2[k], h: h, h2: h2}, nil
	}}
	unif := guard.Attempt[momentSolution]{Name: "uniformization", Run: func(ctx context.Context) (momentSolution, error) {
		return c.absorptionMomentsUniformized(ctx, start)
	}}
	mcEst := guard.Attempt[momentSolution]{Name: "mc-estimate", Degraded: true, Run: func(ctx context.Context) (momentSolution, error) {
		return c.absorptionMomentsMC(ctx, start)
	}}

	b := guard.Block[momentSolution]{
		Name:   "markov/absorption-moments",
		Accept: c.acceptMoments(idx, order),
	}
	if len(order) < SparseCutoff {
		b.Primary = dense
		b.Alternates = []guard.Attempt[momentSolution]{sparse, unif, mcEst}
	} else {
		b.Primary = sparse
		b.Alternates = []guard.Attempt[momentSolution]{unif, mcEst}
	}
	res, err := b.Do(ctx)
	if err != nil {
		return 0, 0, err
	}
	return res.Value.m1, res.Value.m2, nil
}

// acceptMoments is the ladder's acceptance test: NaN/Inf guard, moment
// consistency (E[T] ≥ 0 and E[T²] ≥ E[T]² — Jensen holds for the exact
// moments and for every empirical estimate alike), and a normwise residual
// bound on both linear systems when the route exposes its solution vectors.
func (c *CTMC) acceptMoments(idx, order []int) func(momentSolution) error {
	return func(s momentSolution) error {
		if math.IsNaN(s.m1) || math.IsInf(s.m1, 0) || math.IsNaN(s.m2) || math.IsInf(s.m2, 0) {
			return guard.Rejectedf("non-finite moments E[T]=%v, E[T²]=%v", s.m1, s.m2)
		}
		if s.m1 < 0 || s.m2 < s.m1*s.m1*(1-1e-9) {
			return guard.Rejectedf("inconsistent moments E[T]=%v, E[T²]=%v", s.m1, s.m2)
		}
		if s.h == nil {
			return nil
		}
		// Residuals of Q_T·h = −1 and Q_T·h2 = −2·h, both in one O(nnz) pass.
		var res1, res2, normA, normH, normH2 float64
		for k, u := range order {
			out := c.OutRate(u)
			r1 := -out * s.h[k]
			r2 := -out * s.h2[k]
			rowAbs := out
			for _, e := range c.rows[u] {
				if j := idx[e.To]; j >= 0 {
					r1 += e.Rate * s.h[j]
					r2 += e.Rate * s.h2[j]
				}
				rowAbs += e.Rate
			}
			res1 = math.Max(res1, math.Abs(r1-(-1)))
			res2 = math.Max(res2, math.Abs(r2-(-2*s.h[k])))
			normA = math.Max(normA, rowAbs)
			normH = math.Max(normH, math.Abs(s.h[k]))
			normH2 = math.Max(normH2, math.Abs(s.h2[k]))
		}
		if rel := res1 / (normA*normH + 1); !(rel <= residualRelTol) {
			return guard.Rejectedf("first-moment residual %.3e exceeds %.0e", rel, residualRelTol)
		}
		if rel := res2 / (normA*normH2 + 2*normH); !(rel <= residualRelTol) {
			return guard.Rejectedf("second-moment residual %.3e exceeds %.0e", rel, residualRelTol)
		}
		return nil
	}
}

// absorptionMomentsUniformized is the third rung: exact moments through the
// uniformized jump chain. With P = I + Q/γ and s_k the transient mass after
// k DTMC steps, the absorption step count N satisfies E[N] = Σ_k s_k and
// E[N(N+1)] = 2·Σ_k (k+1)·s_k, and the absorption time T (a random Exp(γ)
// sum of N terms) has E[T] = E[N]/γ and E[T²] = E[N(N+1)]/γ². The route
// checks probability-mass conservation as it sums: the transient mass must
// stay in [0, 1] and never grow.
func (c *CTMC) absorptionMomentsUniformized(ctx context.Context, start int) (momentSolution, error) {
	pi0 := make([]float64, c.n)
	pi0[start] = 1
	s := c.newStepper(pi0)
	if s == nil {
		return momentSolution{}, guard.Numericalf("markov: uniformization undefined (no transitions)")
	}
	var eN, eNN float64
	prev := math.Inf(1)
	m := 0.0
	k := 0
	for ; k < maxUnifSteps; k++ {
		m = 0
		for u, v := range s.cur {
			if !c.absorbing[u] {
				m += v
			}
		}
		if m > prev*(1+1e-12) || m > 1+1e-9 {
			return momentSolution{}, guard.Numericalf("markov: uniformization lost probability-mass conservation at step %d (mass %v after %v)", k, m, prev)
		}
		prev = m
		eN += m
		eNN += float64(k+1) * m
		if m < unifMassTol {
			break
		}
		if k%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return momentSolution{}, err
			}
		}
		s.p.MulVecTransInto(s.next, s.cur)
		s.cur, s.next = s.next, s.cur
		s.matvecs.Inc()
	}
	if m >= unifMassTol {
		return momentSolution{}, guard.Numericalf("markov: uniformization moments did not converge in %d steps (residual mass %v)", maxUnifSteps, m)
	}
	g := s.gamma
	return momentSolution{m1: eN / g, m2: 2 * eNN / (g * g)}, nil
}

// absorptionMomentsMC is the last-resort rung: a deterministic direct
// simulation of the jump chain. It is an estimate, not a solve — results
// carry O(1/√reps) noise and the route is flagged Degraded so advice built
// on it is labelled accordingly.
func (c *CTMC) absorptionMomentsMC(ctx context.Context, start int) (momentSolution, error) {
	obs.C("markov_solve_mc_total").Inc()
	// Per-state transition tables, built once: cumulative scan via ChoiceTotal.
	weights := make([][]float64, c.n)
	targets := make([][]int, c.n)
	outs := make([]float64, c.n)
	for u := 0; u < c.n; u++ {
		if c.absorbing[u] {
			continue
		}
		row := c.rows[u]
		w := make([]float64, len(row))
		t := make([]int, len(row))
		total := 0.0
		for i, e := range row {
			w[i] = e.Rate
			t[i] = e.To
			total += e.Rate
		}
		weights[u], targets[u], outs[u] = w, t, total
	}
	var sum, sum2 float64
	for rep := 0; rep < mcMomentReps; rep++ {
		if rep%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return momentSolution{}, err
			}
		}
		rng := dist.Substream(mcMomentSeed, rep)
		u := start
		t := 0.0
		jumps := 0
		for !c.absorbing[u] {
			out := outs[u]
			if out <= 0 {
				return momentSolution{}, guard.Invalidf("markov: transient state %d with no exits", u)
			}
			t += rng.Exp(out)
			u = targets[u][rng.ChoiceTotal(weights[u], out)]
			if jumps++; jumps > mcMomentJumps {
				return momentSolution{}, guard.Numericalf("markov: MC absorption estimate exceeded %d jumps in one replication", mcMomentJumps)
			}
		}
		sum += t
		sum2 += t * t
	}
	return momentSolution{m1: sum / mcMomentReps, m2: sum2 / mcMomentReps}, nil
}
