// Package markov implements the generic continuous- and discrete-time
// Markov-chain machinery behind the paper's analysis: absorbing-chain
// absorption-time moments (E[X] of Section 2.3), state occupancies, transient
// distributions via uniformization (the Chapman–Kolmogorov solution used for
// the density f_X(t)), and discrete-chain expected visit counts (the Y_d
// construction of Figure 4).
package markov

import (
	"context"
	"errors"
	"fmt"
	"math"

	"recoveryblocks/internal/guard"
	"recoveryblocks/internal/linalg"
	"recoveryblocks/internal/obs"
)

// Entry is one outgoing transition of a sparse chain row.
type Entry struct {
	To   int
	Rate float64 // rate for CTMC, probability for DTMC
}

// CTMC is a finite continuous-time Markov chain stored sparsely.
// Self-rates are not stored; the diagonal of the generator is implied by the
// row sums.
type CTMC struct {
	n         int
	rows      [][]Entry
	absorbing []bool
	degHint   int // pre-size for each row's first AddRate (0 = grow by append)
}

// NewCTMC returns an empty chain on n states.
func NewCTMC(n int) *CTMC {
	if n <= 0 {
		panic("markov: CTMC needs at least one state")
	}
	return &CTMC{n: n, rows: make([][]Entry, n), absorbing: make([]bool, n)}
}

// ReserveDegree pre-sizes every row touched after this call to the given
// out-degree, so chain construction appends without reallocation. Callers
// that know the transition structure (the full model emits at most
// n + C(n,2) transitions per state) set it before building; at 2^n states
// the saved copying is a measurable slice of build time.
func (c *CTMC) ReserveDegree(deg int) {
	if deg > 0 {
		c.degHint = deg
	}
}

// N returns the number of states.
func (c *CTMC) N() int { return c.n }

// AddRate adds an exponential transition from→to with the given rate.
// Multiple calls accumulate. Rates must be nonnegative; self-transitions and
// transitions out of absorbing states are rejected.
func (c *CTMC) AddRate(from, to int, rate float64) {
	switch {
	case rate < 0:
		panic("markov: negative rate")
	case rate == 0:
		return
	case from == to:
		panic("markov: self-transition in CTMC")
	case c.absorbing[from]:
		panic("markov: transition out of an absorbing state")
	}
	for i := range c.rows[from] {
		if c.rows[from][i].To == to {
			c.rows[from][i].Rate += rate
			return
		}
	}
	if c.rows[from] == nil && c.degHint > 0 {
		c.rows[from] = make([]Entry, 0, c.degHint)
	}
	c.rows[from] = append(c.rows[from], Entry{To: to, Rate: rate})
}

// SetAbsorbing marks a state absorbing. Any previously added transitions out
// of it are discarded.
func (c *CTMC) SetAbsorbing(state int) {
	c.absorbing[state] = true
	c.rows[state] = nil
}

// IsAbsorbing reports whether state is absorbing.
func (c *CTMC) IsAbsorbing(state int) bool { return c.absorbing[state] }

// Transitions returns the outgoing transitions of state (shared slice; do not
// modify).
func (c *CTMC) Transitions(state int) []Entry { return c.rows[state] }

// OutRate returns the total departure rate of state.
func (c *CTMC) OutRate(state int) float64 {
	s := 0.0
	for _, e := range c.rows[state] {
		s += e.Rate
	}
	return s
}

// MaxOutRate returns the largest departure rate over all states — the
// smallest admissible uniformization constant.
func (c *CTMC) MaxOutRate() float64 {
	m := 0.0
	for u := 0; u < c.n; u++ {
		if r := c.OutRate(u); r > m {
			m = r
		}
	}
	return m
}

// AbsorbRate returns the total rate from state directly into absorbing
// states.
func (c *CTMC) AbsorbRate(state int) float64 {
	s := 0.0
	for _, e := range c.rows[state] {
		if c.absorbing[e.To] {
			s += e.Rate
		}
	}
	return s
}

// Generator returns the dense generator matrix Q (diagonal = −row sum).
func (c *CTMC) Generator() *linalg.Matrix {
	q := linalg.NewMatrix(c.n, c.n)
	for u := 0; u < c.n; u++ {
		for _, e := range c.rows[u] {
			q.Add(u, e.To, e.Rate)
			q.Add(u, u, -e.Rate)
		}
	}
	return q
}

// transientIndex maps transient states to compact indices; absorbing states
// map to -1.
func (c *CTMC) transientIndex() ([]int, []int) {
	idx := make([]int, c.n)
	var order []int
	for u := 0; u < c.n; u++ {
		if c.absorbing[u] {
			idx[u] = -1
			continue
		}
		idx[u] = len(order)
		order = append(order, u)
	}
	return idx, order
}

// SparseCutoff is the transient-state count at and above which the
// absorbing-chain solves switch from the dense LU route to the CSR
// two-level Gauss–Seidel route. Below it the dense factorization is cheap,
// trivially robust, and byte-for-byte reproducible against the historical
// results; above it the O(nt³) dense cost explodes while the sparse route
// stays proportional to the transition count (see AbsorptionMomentsSparse).
const SparseCutoff = 256

// sparse-solve accuracy knobs: tol is a normwise backward error (the same
// class a backward-stable LU delivers), and the cycle budget is far above
// anything the aggregated solver needs on chains whose level structure the
// aggregation captures — it exists to turn pathological inputs into errors
// instead of hangs.
const (
	gsTol     = 1e-12
	gsMaxIter = 100000
)

// AbsorptionMoments returns the first and second moments of the absorption
// time from the given start state, by solving Q_T·m1 = −1 and Q_T·m2 = −2·m1
// on the transient generator. It fails if some transient state cannot reach
// an absorbing state (singular system). State spaces below SparseCutoff take
// the dense LU route; larger ones the sparse iterative route — and every
// solve runs inside the recovery-block ladder of AbsorptionMomentsCtx, so a
// rejected or failed route falls through to the next one instead of
// propagating a bad number.
func (c *CTMC) AbsorptionMoments(start int) (m1, m2 float64, err error) {
	return c.AbsorptionMomentsCtx(context.Background(), start)
}

// transientCount returns the number of non-absorbing states.
func (c *CTMC) transientCount() int {
	nt := 0
	for _, a := range c.absorbing {
		if !a {
			nt++
		}
	}
	return nt
}

// AbsorptionMomentsDense is the direct route: build the dense transient
// generator and LU-factor it. Exposed so tests and benchmarks can compare
// it against the sparse route at any size.
func (c *CTMC) AbsorptionMomentsDense(start int) (m1, m2 float64, err error) {
	if c.absorbing[start] {
		return 0, 0, nil
	}
	idx, order := c.transientIndex()
	h, h2, err := c.momentVectorsDense(idx, order)
	if err != nil {
		return 0, 0, err
	}
	k := idx[start]
	return h[k], h2[k], nil
}

// momentVectorsDense solves both moment systems by dense LU and returns the
// full solution vectors (indexed by transient order) so the guard's
// acceptance test can bound their residuals.
func (c *CTMC) momentVectorsDense(idx, order []int) (h, h2 []float64, err error) {
	obs.C("markov_solve_dense_total").Inc()
	nt := len(order)
	q := linalg.NewMatrix(nt, nt)
	for k, u := range order {
		for _, e := range c.rows[u] {
			q.Add(k, k, -e.Rate)
			if j := idx[e.To]; j >= 0 {
				q.Add(k, j, e.Rate)
			}
		}
	}
	f, err := linalg.Factor(q)
	if err != nil {
		return nil, nil, guard.Invalidf("markov: absorption unreachable from some state: %v", err)
	}
	rhs := make([]float64, nt)
	for i := range rhs {
		rhs[i] = -1
	}
	h, err = f.Solve(rhs)
	if err != nil {
		return nil, nil, err
	}
	for i := range rhs {
		rhs[i] = -2 * h[i]
	}
	h2, err = f.Solve(rhs)
	if err != nil {
		return nil, nil, err
	}
	return h, h2, nil
}

// AbsorptionMomentsSparse solves the same two systems on a CSR copy of the
// transient generator with the aggregated Gauss–Seidel solver, aggregating
// states by their graph distance to the absorbing set. For the paper's
// chains that distance recovers the popcount levels of the state vector —
// exactly the partition under which uniform-rate chains lump — so the
// coarse correction removes the slow quasi-stationary error mode and the
// solve converges in a handful of sweeps where plain Gauss–Seidel needs
// O(expected jumps to absorption) of them. Cost per sweep is O(transitions),
// so the full solve scales like the transition count rather than the cube
// of the state count.
func (c *CTMC) AbsorptionMomentsSparse(start int) (m1, m2 float64, err error) {
	if c.absorbing[start] {
		return 0, 0, nil
	}
	idx, order := c.transientIndex()
	h, h2, err := c.momentVectorsSparse(idx, order)
	if err != nil {
		return 0, 0, err
	}
	k := idx[start]
	return h[k], h2[k], nil
}

// momentVectorsSparse is the iterative counterpart of momentVectorsDense:
// both systems solved by the aggregated Gauss–Seidel route, full vectors out.
func (c *CTMC) momentVectorsSparse(idx, order []int) (h, h2 []float64, err error) {
	obs.C("markov_solve_sparse_total").Inc()
	q, agg, nAgg, err := c.transientCSR(idx, order, false)
	if err != nil {
		return nil, nil, err
	}
	nt := len(order)
	rhs := make([]float64, nt)
	for i := range rhs {
		rhs[i] = -1
	}
	h, _, err = q.SolveTwoLevelGS(rhs, agg, nAgg, gsTol, gsMaxIter)
	if err != nil {
		return nil, nil, guard.Numericalf("markov: sparse absorption solve: %v", err)
	}
	for i := range rhs {
		rhs[i] = -2 * h[i]
	}
	h2, _, err = q.SolveTwoLevelGS(rhs, agg, nAgg, gsTol, gsMaxIter)
	if err != nil {
		return nil, nil, guard.Numericalf("markov: sparse absorption solve (second moment): %v", err)
	}
	return h, h2, nil
}

// transientCSR assembles the transient generator Q_T (or its transpose) in
// CSR form together with the distance-to-absorption aggregation the sparse
// solver uses as its coarse level. It fails if some transient state cannot
// reach an absorbing state — the same singularity the dense route reports.
func (c *CTMC) transientCSR(idx, order []int, transpose bool) (q *linalg.CSR, agg []int, nAgg int, err error) {
	nt := len(order)
	nnz := 0
	for _, u := range order {
		nnz += len(c.rows[u]) + 1
	}

	// Aggregates: BFS distance to the absorbing set over reversed edges.
	// (For the recovery-block chains this is n − popcount + 1 — the level
	// structure of the last-action vector.)
	rev := make([][]int32, nt)
	for k, u := range order {
		for _, e := range c.rows[u] {
			if j := idx[e.To]; j >= 0 {
				rev[j] = append(rev[j], int32(k))
			}
		}
	}
	dist := make([]int, nt)
	for i := range dist {
		dist[i] = -1
	}
	var queue []int32
	for k, u := range order {
		for _, e := range c.rows[u] {
			if c.absorbing[e.To] {
				if dist[k] < 0 {
					dist[k] = 0
					queue = append(queue, int32(k))
				}
				break
			}
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range rev[v] {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	for k, d := range dist {
		if d < 0 {
			return nil, nil, 0, guard.Invalidf("markov: absorption unreachable from state %d", order[k])
		}
		if d+1 > nAgg {
			nAgg = d + 1
		}
	}

	b := linalg.NewCSRBuilder(nt, nnz)
	if transpose {
		// Gather Q_Tᵀ rows: incoming transitions plus the diagonal.
		type inEdge struct {
			from int32
			rate float64
		}
		in := make([][]inEdge, nt)
		for k, u := range order {
			for _, e := range c.rows[u] {
				if j := idx[e.To]; j >= 0 {
					in[j] = append(in[j], inEdge{int32(k), e.Rate})
				}
			}
		}
		for k, u := range order {
			b.Add(k, k, -c.OutRate(u))
			for _, e := range in[k] {
				b.Add(k, int(e.from), e.rate)
			}
		}
	} else {
		for k, u := range order {
			b.Add(k, k, -c.OutRate(u))
			for _, e := range c.rows[u] {
				if j := idx[e.To]; j >= 0 {
					b.Add(k, j, e.Rate)
				}
			}
		}
	}
	return b.Build(), dist, nAgg, nil
}

// MeanAbsorptionTime returns E[time to absorption] from start.
func (c *CTMC) MeanAbsorptionTime(start int) (float64, error) {
	m1, _, err := c.AbsorptionMoments(start)
	return m1, err
}

// MeanAbsorptionTimeIterative computes the same expectation by Gauss–Seidel
// sweeps on h_u = (1 + Σ_v q_uv·h_v)/q_u, avoiding the dense factorization.
// Used for state spaces too large for LU, and as an independent check of the
// direct solver.
func (c *CTMC) MeanAbsorptionTimeIterative(start int, tol float64, maxIter int) (float64, error) {
	if c.absorbing[start] {
		return 0, nil
	}
	h := make([]float64, c.n)
	for iter := 0; iter < maxIter; iter++ {
		delta := 0.0
		for u := 0; u < c.n; u++ {
			if c.absorbing[u] {
				continue
			}
			out := 0.0
			acc := 1.0
			for _, e := range c.rows[u] {
				out += e.Rate
				if !c.absorbing[e.To] {
					acc += e.Rate * h[e.To]
				}
			}
			if out == 0 {
				return 0, errors.New("markov: transient state with no exits")
			}
			nv := acc / out
			if d := math.Abs(nv - h[u]); d > delta {
				delta = d
			}
			h[u] = nv
		}
		if delta < tol {
			return h[start], nil
		}
	}
	return 0, errors.New("markov: Gauss–Seidel did not converge")
}

// ExpectedOccupancy returns, for each state, the expected total time spent in
// it before absorption when starting from start (0 for absorbing states).
// It solves oᵀ·Q_T = −e_startᵀ — below SparseCutoff by a dense LU on the
// transpose, above it by the sparse aggregated solver on the CSR transpose
// (the transposed system has the same level structure, so the same
// distance-to-absorption aggregation applies).
func (c *CTMC) ExpectedOccupancy(start int) ([]float64, error) {
	occ := make([]float64, c.n)
	if c.absorbing[start] {
		return occ, nil
	}
	idx, order := c.transientIndex()
	nt := len(order)
	rhs := make([]float64, nt)
	rhs[idx[start]] = -1

	var o []float64
	var err error
	if nt < SparseCutoff {
		obs.C("markov_solve_dense_total").Inc()
		// Build the transpose of Q_T directly so a single LU solve suffices.
		qt := linalg.NewMatrix(nt, nt)
		for k, u := range order {
			for _, e := range c.rows[u] {
				qt.Add(k, k, -e.Rate)
				if j := idx[e.To]; j >= 0 {
					qt.Add(j, k, e.Rate)
				}
			}
		}
		o, err = linalg.SolveLinear(qt, rhs)
	} else {
		obs.C("markov_solve_sparse_total").Inc()
		var qt *linalg.CSR
		var agg []int
		var nAgg int
		qt, agg, nAgg, err = c.transientCSR(idx, order, true)
		if err != nil {
			return nil, err
		}
		o, _, err = qt.SolveTwoLevelGS(rhs, agg, nAgg, gsTol, gsMaxIter)
		if err != nil {
			err = fmt.Errorf("markov: sparse occupancy solve: %w", err)
		}
	}
	if err != nil {
		return nil, err
	}
	for k, u := range order {
		occ[u] = o[k]
	}
	return occ, nil
}

// Uniformized returns the uniformized jump chain P = I + Q/gamma. gamma must
// be at least the maximum departure rate. Absorbing states stay absorbing.
func (c *CTMC) Uniformized(gamma float64) *DTMC {
	if gamma < c.MaxOutRate() {
		panic("markov: uniformization constant below max out-rate")
	}
	d := NewDTMC(c.n)
	for u := 0; u < c.n; u++ {
		if c.absorbing[u] {
			d.SetAbsorbing(u)
			continue
		}
		stay := 1.0
		for _, e := range c.rows[u] {
			p := e.Rate / gamma
			d.AddProb(u, e.To, p)
			stay -= p
		}
		if stay > 0 {
			d.AddProb(u, u, stay)
		}
	}
	return d
}
