// Package markov implements the generic continuous- and discrete-time
// Markov-chain machinery behind the paper's analysis: absorbing-chain
// absorption-time moments (E[X] of Section 2.3), state occupancies, transient
// distributions via uniformization (the Chapman–Kolmogorov solution used for
// the density f_X(t)), and discrete-chain expected visit counts (the Y_d
// construction of Figure 4).
package markov

import (
	"errors"
	"fmt"
	"math"

	"recoveryblocks/internal/linalg"
)

// Entry is one outgoing transition of a sparse chain row.
type Entry struct {
	To   int
	Rate float64 // rate for CTMC, probability for DTMC
}

// CTMC is a finite continuous-time Markov chain stored sparsely.
// Self-rates are not stored; the diagonal of the generator is implied by the
// row sums.
type CTMC struct {
	n         int
	rows      [][]Entry
	absorbing []bool
}

// NewCTMC returns an empty chain on n states.
func NewCTMC(n int) *CTMC {
	if n <= 0 {
		panic("markov: CTMC needs at least one state")
	}
	return &CTMC{n: n, rows: make([][]Entry, n), absorbing: make([]bool, n)}
}

// N returns the number of states.
func (c *CTMC) N() int { return c.n }

// AddRate adds an exponential transition from→to with the given rate.
// Multiple calls accumulate. Rates must be nonnegative; self-transitions and
// transitions out of absorbing states are rejected.
func (c *CTMC) AddRate(from, to int, rate float64) {
	switch {
	case rate < 0:
		panic("markov: negative rate")
	case rate == 0:
		return
	case from == to:
		panic("markov: self-transition in CTMC")
	case c.absorbing[from]:
		panic("markov: transition out of an absorbing state")
	}
	for i := range c.rows[from] {
		if c.rows[from][i].To == to {
			c.rows[from][i].Rate += rate
			return
		}
	}
	c.rows[from] = append(c.rows[from], Entry{To: to, Rate: rate})
}

// SetAbsorbing marks a state absorbing. Any previously added transitions out
// of it are discarded.
func (c *CTMC) SetAbsorbing(state int) {
	c.absorbing[state] = true
	c.rows[state] = nil
}

// IsAbsorbing reports whether state is absorbing.
func (c *CTMC) IsAbsorbing(state int) bool { return c.absorbing[state] }

// Transitions returns the outgoing transitions of state (shared slice; do not
// modify).
func (c *CTMC) Transitions(state int) []Entry { return c.rows[state] }

// OutRate returns the total departure rate of state.
func (c *CTMC) OutRate(state int) float64 {
	s := 0.0
	for _, e := range c.rows[state] {
		s += e.Rate
	}
	return s
}

// MaxOutRate returns the largest departure rate over all states — the
// smallest admissible uniformization constant.
func (c *CTMC) MaxOutRate() float64 {
	m := 0.0
	for u := 0; u < c.n; u++ {
		if r := c.OutRate(u); r > m {
			m = r
		}
	}
	return m
}

// AbsorbRate returns the total rate from state directly into absorbing
// states.
func (c *CTMC) AbsorbRate(state int) float64 {
	s := 0.0
	for _, e := range c.rows[state] {
		if c.absorbing[e.To] {
			s += e.Rate
		}
	}
	return s
}

// Generator returns the dense generator matrix Q (diagonal = −row sum).
func (c *CTMC) Generator() *linalg.Matrix {
	q := linalg.NewMatrix(c.n, c.n)
	for u := 0; u < c.n; u++ {
		for _, e := range c.rows[u] {
			q.Add(u, e.To, e.Rate)
			q.Add(u, u, -e.Rate)
		}
	}
	return q
}

// transientIndex maps transient states to compact indices; absorbing states
// map to -1.
func (c *CTMC) transientIndex() ([]int, []int) {
	idx := make([]int, c.n)
	var order []int
	for u := 0; u < c.n; u++ {
		if c.absorbing[u] {
			idx[u] = -1
			continue
		}
		idx[u] = len(order)
		order = append(order, u)
	}
	return idx, order
}

// AbsorptionMoments returns the first and second moments of the absorption
// time from the given start state, by solving Q_T·m1 = −1 and Q_T·m2 = −2·m1
// on the transient generator. It fails if some transient state cannot reach
// an absorbing state (singular system).
func (c *CTMC) AbsorptionMoments(start int) (m1, m2 float64, err error) {
	if c.absorbing[start] {
		return 0, 0, nil
	}
	idx, order := c.transientIndex()
	nt := len(order)
	q := linalg.NewMatrix(nt, nt)
	for k, u := range order {
		for _, e := range c.rows[u] {
			q.Add(k, k, -e.Rate)
			if j := idx[e.To]; j >= 0 {
				q.Add(k, j, e.Rate)
			}
		}
	}
	f, err := linalg.Factor(q)
	if err != nil {
		return 0, 0, fmt.Errorf("markov: absorption unreachable from some state: %w", err)
	}
	rhs := make([]float64, nt)
	for i := range rhs {
		rhs[i] = -1
	}
	h, err := f.Solve(rhs)
	if err != nil {
		return 0, 0, err
	}
	for i := range rhs {
		rhs[i] = -2 * h[i]
	}
	h2, err := f.Solve(rhs)
	if err != nil {
		return 0, 0, err
	}
	k := idx[start]
	return h[k], h2[k], nil
}

// MeanAbsorptionTime returns E[time to absorption] from start.
func (c *CTMC) MeanAbsorptionTime(start int) (float64, error) {
	m1, _, err := c.AbsorptionMoments(start)
	return m1, err
}

// MeanAbsorptionTimeIterative computes the same expectation by Gauss–Seidel
// sweeps on h_u = (1 + Σ_v q_uv·h_v)/q_u, avoiding the dense factorization.
// Used for state spaces too large for LU, and as an independent check of the
// direct solver.
func (c *CTMC) MeanAbsorptionTimeIterative(start int, tol float64, maxIter int) (float64, error) {
	if c.absorbing[start] {
		return 0, nil
	}
	h := make([]float64, c.n)
	for iter := 0; iter < maxIter; iter++ {
		delta := 0.0
		for u := 0; u < c.n; u++ {
			if c.absorbing[u] {
				continue
			}
			out := 0.0
			acc := 1.0
			for _, e := range c.rows[u] {
				out += e.Rate
				if !c.absorbing[e.To] {
					acc += e.Rate * h[e.To]
				}
			}
			if out == 0 {
				return 0, errors.New("markov: transient state with no exits")
			}
			nv := acc / out
			if d := math.Abs(nv - h[u]); d > delta {
				delta = d
			}
			h[u] = nv
		}
		if delta < tol {
			return h[start], nil
		}
	}
	return 0, errors.New("markov: Gauss–Seidel did not converge")
}

// ExpectedOccupancy returns, for each state, the expected total time spent in
// it before absorption when starting from start (0 for absorbing states).
// It solves oᵀ·Q_T = −e_startᵀ.
func (c *CTMC) ExpectedOccupancy(start int) ([]float64, error) {
	occ := make([]float64, c.n)
	if c.absorbing[start] {
		return occ, nil
	}
	idx, order := c.transientIndex()
	nt := len(order)
	// Build the transpose of Q_T directly so a single LU solve suffices.
	qt := linalg.NewMatrix(nt, nt)
	for k, u := range order {
		for _, e := range c.rows[u] {
			qt.Add(k, k, -e.Rate)
			if j := idx[e.To]; j >= 0 {
				qt.Add(j, k, e.Rate)
			}
		}
	}
	rhs := make([]float64, nt)
	rhs[idx[start]] = -1
	o, err := linalg.SolveLinear(qt, rhs)
	if err != nil {
		return nil, err
	}
	for k, u := range order {
		occ[u] = o[k]
	}
	return occ, nil
}

// Uniformized returns the uniformized jump chain P = I + Q/gamma. gamma must
// be at least the maximum departure rate. Absorbing states stay absorbing.
func (c *CTMC) Uniformized(gamma float64) *DTMC {
	if gamma < c.MaxOutRate() {
		panic("markov: uniformization constant below max out-rate")
	}
	d := NewDTMC(c.n)
	for u := 0; u < c.n; u++ {
		if c.absorbing[u] {
			d.SetAbsorbing(u)
			continue
		}
		stay := 1.0
		for _, e := range c.rows[u] {
			p := e.Rate / gamma
			d.AddProb(u, e.To, p)
			stay -= p
		}
		if stay > 0 {
			d.AddProb(u, u, stay)
		}
	}
	return d
}
