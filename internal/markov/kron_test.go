package markov

import (
	"context"
	"math"
	"testing"

	"recoveryblocks/internal/guard"
	"recoveryblocks/internal/linalg"
)

// matrixFreeFromChain mirrors a CTMC's transient block into a MatrixFree
// engine over a CSR operator, assuming states 0..nt−1 are transient and the
// rest absorbing — the harness for judging the matrix-free routes against
// the enumerated ones on one chain.
func matrixFreeFromChain(c *CTMC, start int) *MatrixFree {
	nt := c.transientCount()
	b := linalg.NewCSRBuilder(nt, nt*4)
	var absIdx []int
	var absRate []float64
	rows := func(u int, yield func(to int, rate float64)) {
		for _, e := range c.Transitions(u) {
			if c.IsAbsorbing(e.To) {
				yield(-1, e.Rate)
			} else {
				yield(e.To, e.Rate)
			}
		}
	}
	for u := 0; u < nt; u++ {
		if c.IsAbsorbing(u) {
			panic("matrixFreeFromChain wants transient states first")
		}
		b.Add(u, u, -c.OutRate(u))
		a := 0.0
		for _, e := range c.Transitions(u) {
			if c.IsAbsorbing(e.To) {
				a += e.Rate
			} else {
				b.Add(u, e.To, e.Rate)
			}
		}
		if a > 0 {
			absIdx = append(absIdx, u)
			absRate = append(absRate, a)
		}
	}
	return NewMatrixFree(MatrixFreeSpec{
		Op:         b.Build(),
		Gamma:      c.MaxOutRate(),
		Start:      start,
		AbsorbIdx:  absIdx,
		AbsorbRate: absRate,
		Rows:       rows,
	})
}

// TestMatrixFreeMatchesEnumerated runs every MatrixFree route against the
// enumerated CTMC answers on the wandering birth–death chain.
func TestMatrixFreeMatchesEnumerated(t *testing.T) {
	c := ladderChain(60)
	mf := matrixFreeFromChain(c, 0)

	m1, m2, err := c.AbsorptionMoments(0)
	if err != nil {
		t.Fatal(err)
	}
	k1, k2, err := mf.AbsorptionMoments()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k1-m1) > 1e-8*m1 || math.Abs(k2-m2) > 1e-8*m2 {
		t.Fatalf("kron moments (%g, %g) deviate from enumerated (%g, %g)", k1, k2, m1, m2)
	}

	occ, err := c.ExpectedOccupancy(0)
	if err != nil {
		t.Fatal(err)
	}
	kocc, err := mf.ExpectedOccupancy()
	if err != nil {
		t.Fatal(err)
	}
	for i := range kocc {
		if math.Abs(kocc[i]-occ[i]) > 1e-8*(1+occ[i]) {
			t.Fatalf("occupancy[%d] = %g, enumerated says %g", i, kocc[i], occ[i])
		}
	}

	times := []float64{0, 5, 20, 50, 100}
	pi0 := make([]float64, c.N())
	pi0[0] = 1
	cdf := c.AbsorptionCDF(pi0, times, 1e-12)
	den := c.AbsorptionDensity(pi0, times, 1e-12)
	kcdf, err := mf.AbsorptionCDF(times, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	kden, err := mf.AbsorptionDensity(times, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	for i := range times {
		if math.Abs(kcdf[i]-cdf[i]) > 1e-8 {
			t.Fatalf("CDF(%g) = %g, enumerated says %g", times[i], kcdf[i], cdf[i])
		}
		if math.Abs(kden[i]-den[i]) > 1e-8 {
			t.Fatalf("density(%g) = %g, enumerated says %g", times[i], kden[i], den[i])
		}
	}
}

// TestMatrixFreeLadderFallbacks forces each rung of the matrix-free moment
// ladder and checks the fallback reproduces the healthy answer: the
// uniformization rung to solver tolerance, the on-the-fly MC rung to a few
// standard errors with the Degraded flag set. Saturating depths clamp to the
// last rung (the recovery-block contract: some alternate always runs).
func TestMatrixFreeLadderFallbacks(t *testing.T) {
	c := ladderChain(40)
	mf := matrixFreeFromChain(c, 0)
	m1, m2, err := mf.AbsorptionMoments()
	if err != nil {
		t.Fatalf("healthy solve: %v", err)
	}

	for _, depth := range []int{1, 2, 16} {
		ctx := guard.WithFaults(context.Background(), guard.FaultSpec{Depth: depth})
		rec := &guard.Recorder{}
		ctx = guard.WithRecorder(ctx, rec)
		f1, f2, err := mf.AbsorptionMomentsCtx(ctx)
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		ev := rec.Events()
		wantRung := min(depth, 2)
		if len(ev) != 1 || ev[0].Attempt != wantRung {
			t.Fatalf("depth %d: events = %+v, want one fallback at rung %d", depth, ev, wantRung)
		}
		if wantRung < 2 {
			if ev[0].Degraded {
				t.Fatalf("depth %d: exact rung flagged degraded", depth)
			}
			if math.Abs(f1-m1) > 1e-6*m1 || math.Abs(f2-m2) > 1e-6*m2 {
				t.Fatalf("depth %d: fallback moments (%g, %g) deviate from (%g, %g)", depth, f1, f2, m1, m2)
			}
		} else {
			if !ev[0].Degraded {
				t.Fatalf("depth %d: MC rung not flagged degraded", depth)
			}
			se1 := math.Sqrt((m2 - m1*m1) / kronMCReps)
			if math.Abs(f1-m1) > 6*se1 {
				t.Fatalf("depth %d: MC mean %g is %g SE from exact %g", depth, f1, math.Abs(f1-m1)/se1, m1)
			}
		}
	}
}

// TestMatrixFreeCancellation: a canceled context aborts the ladder with the
// budget taxonomy rather than hanging or mislabeling.
func TestMatrixFreeCancellation(t *testing.T) {
	c := ladderChain(40)
	mf := matrixFreeFromChain(c, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := mf.AbsorptionMomentsCtx(ctx); err == nil {
		t.Fatal("canceled context did not abort the matrix-free ladder")
	}
}
