package markov

import (
	"math"
	"testing"
)

// buildAbsorbing assembles a CTMC shaped like the paper's full model on a
// bitmask state space: RP events set bits (rates mu[i]), interactions clear
// pairs (rate lambda), the all-ones completion absorbs. State 2^n is the
// absorbing state, masks 0..2^n−2 are intermediate, and the all-ones mask
// doubles as the entry state.
func buildAbsorbing(mu []float64, lambda float64) *CTMC {
	n := len(mu)
	ones := 1<<n - 1
	c := NewCTMC(1<<n + 1)
	c.ReserveDegree(n + n*(n-1)/2)
	c.SetAbsorbing(1 << n)
	for mask := 0; mask <= ones; mask++ {
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				continue
			}
			next := mask | 1<<i
			if next == ones {
				c.AddRate(mask, 1<<n, mu[i])
			} else {
				c.AddRate(mask, next, mu[i])
			}
		}
		if mask == ones {
			for i := 0; i < n; i++ {
				c.AddRate(mask, 1<<n, mu[i])
			}
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				bi, bj := mask&(1<<i) != 0, mask&(1<<j) != 0
				if !bi && !bj {
					continue
				}
				c.AddRate(mask, mask&^(1<<i|1<<j), lambda)
			}
		}
	}
	return c
}

// TestSparseMatchesDenseMoments is the core equivalence gate of the sparse
// route: on chains large enough to exercise it, both solvers must agree to
// the backward-error tolerance — for uniform rates (exactly lumpable levels,
// the fast path) and for strongly asymmetric rates (where the coarse level
// is only an approximation and the smoother must carry more).
func TestSparseMatchesDenseMoments(t *testing.T) {
	cases := []struct {
		name   string
		mu     []float64
		lambda float64
	}{
		{"n8-uniform", uniformRates(8, 1), 2.0 / 7},
		{"n9-asym", rampRates(9, 0.5, 2.5), 2.0 / 8},
		{"n8-light", uniformRates(8, 1), 0.1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			c := buildAbsorbing(tc.mu, tc.lambda)
			start := 1<<len(tc.mu) - 1 // entry = all-ones mask
			dm1, dm2, err := c.AbsorptionMomentsDense(start)
			if err != nil {
				t.Fatal(err)
			}
			sm1, sm2, err := c.AbsorptionMomentsSparse(start)
			if err != nil {
				t.Fatal(err)
			}
			if rel(dm1, sm1) > 1e-8 {
				t.Errorf("m1: dense %v vs sparse %v (rel %v)", dm1, sm1, rel(dm1, sm1))
			}
			if rel(dm2, sm2) > 1e-8 {
				t.Errorf("m2: dense %v vs sparse %v (rel %v)", dm2, sm2, rel(dm2, sm2))
			}
		})
	}
}

// TestSparseOccupancyMatchesDense checks the transposed solve the same way,
// summing occupancies (which must equal the mean absorption time) and
// comparing state by state against a dense reference chain below the
// cutoff... by rebuilding the same chain and calling the internal sparse
// path directly.
func TestSparseOccupancyMatchesDense(t *testing.T) {
	mu := rampRates(9, 0.8, 1.6)
	c := buildAbsorbing(mu, 0.25)
	start := 1<<len(mu) - 1

	idx, order := c.transientIndex()
	rhs := make([]float64, len(order))
	rhs[idx[start]] = -1
	qt, agg, nAgg, err := c.transientCSR(idx, order, true)
	if err != nil {
		t.Fatal(err)
	}
	o, iters, err := qt.SolveTwoLevelGS(rhs, agg, nAgg, gsTol, gsMaxIter)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("occupancy solve converged in %d cycles", iters)

	// Σ occupancy = E[absorption time].
	m1, _, err := c.AbsorptionMomentsDense(start)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range o {
		sum += v
	}
	if rel(m1, sum) > 1e-8 {
		t.Errorf("Σ occupancy %v vs E[T] %v", sum, m1)
	}

	// ExpectedOccupancy's public route must agree (it auto-selects sparse at
	// this size).
	occ, err := c.ExpectedOccupancy(start)
	if err != nil {
		t.Fatal(err)
	}
	for k, u := range order {
		if math.Abs(occ[u]-o[k]) > 1e-9*(1+math.Abs(o[k])) {
			t.Fatalf("occ[%d] = %v, want %v", u, occ[u], o[k])
		}
	}
}

// TestSparseSolveUnreachableAbsorption pins the failure mode: a chain with a
// transient trap must error, not hang or return garbage.
func TestSparseSolveUnreachableAbsorption(t *testing.T) {
	c := NewCTMC(300)
	c.SetAbsorbing(299)
	for i := 0; i < 297; i++ {
		c.AddRate(i, i+1, 1)
		c.AddRate(i+1, i, 0.5)
	}
	// States 0..297 form a chain that never reaches 299; 298 does.
	c.AddRate(298, 299, 1)
	if _, _, err := c.AbsorptionMomentsSparse(0); err == nil {
		t.Fatal("unreachable absorption must fail")
	}
}

func uniformRates(n int, v float64) []float64 {
	mu := make([]float64, n)
	for i := range mu {
		mu[i] = v
	}
	return mu
}

// rampRates spreads rates linearly from lo to hi — a strongly asymmetric
// vector that breaks exact lumpability.
func rampRates(n int, lo, hi float64) []float64 {
	mu := make([]float64, n)
	for i := range mu {
		mu[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return mu
}

func rel(a, b float64) float64 {
	return math.Abs(a-b) / math.Max(1, math.Abs(a))
}
