package markov

import (
	"math"
	"testing"
	"testing/quick"

	"recoveryblocks/internal/ode"
)

// twoStateChain: 0 --(rate r)--> 1 (absorbing). Absorption time ~ Exp(r).
func twoStateChain(r float64) *CTMC {
	c := NewCTMC(2)
	c.AddRate(0, 1, r)
	c.SetAbsorbing(1)
	return c
}

func TestExponentialAbsorption(t *testing.T) {
	for _, r := range []float64{0.5, 1, 4} {
		c := twoStateChain(r)
		m1, m2, err := c.AbsorptionMoments(0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(m1-1/r) > 1e-12 {
			t.Fatalf("E[T] = %v, want %v", m1, 1/r)
		}
		if math.Abs(m2-2/(r*r)) > 1e-10 {
			t.Fatalf("E[T²] = %v, want %v", m2, 2/(r*r))
		}
	}
}

func TestErlangAbsorption(t *testing.T) {
	// 0→1→2→3 each at rate r: absorption time is Erlang(3, r).
	r := 2.0
	c := NewCTMC(4)
	c.AddRate(0, 1, r)
	c.AddRate(1, 2, r)
	c.AddRate(2, 3, r)
	c.SetAbsorbing(3)
	m1, m2, err := c.AbsorptionMoments(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m1-3/r) > 1e-12 {
		t.Fatalf("Erlang mean = %v", m1)
	}
	want2 := 3/(r*r) + 9/(r*r) // Var = k/r², E[T²] = Var + mean²
	if math.Abs(m2-want2) > 1e-10 {
		t.Fatalf("Erlang second moment = %v, want %v", m2, want2)
	}
}

func TestCompetingRisks(t *testing.T) {
	// 0 → 1 at rate a, 0 → 2 at rate b, both absorbing: E[T] = 1/(a+b) and
	// absorption splits proportionally.
	a, b := 1.5, 0.5
	c := NewCTMC(3)
	c.AddRate(0, 1, a)
	c.AddRate(0, 2, b)
	c.SetAbsorbing(1)
	c.SetAbsorbing(2)
	m1, err := c.MeanAbsorptionTime(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m1-1/(a+b)) > 1e-12 {
		t.Fatalf("competing risks mean = %v", m1)
	}
	d := c.Uniformized(c.MaxOutRate())
	probs, err := d.AbsorptionProbabilities(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(probs[1]-a/(a+b)) > 1e-12 || math.Abs(probs[2]-b/(a+b)) > 1e-12 {
		t.Fatalf("absorption split = %v", probs)
	}
}

func TestIterativeMatchesDirect(t *testing.T) {
	// Birth–death chain with absorbing upper end.
	c := NewCTMC(6)
	for i := 0; i < 5; i++ {
		c.AddRate(i, i+1, 1.0+float64(i))
		if i > 0 {
			c.AddRate(i, i-1, 0.7)
		}
	}
	c.SetAbsorbing(5)
	direct, err := c.MeanAbsorptionTime(0)
	if err != nil {
		t.Fatal(err)
	}
	iter, err := c.MeanAbsorptionTimeIterative(0, 1e-12, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(direct-iter) > 1e-8 {
		t.Fatalf("direct %v vs iterative %v", direct, iter)
	}
}

func TestOccupancySumsToMeanAbsorption(t *testing.T) {
	c := NewCTMC(5)
	c.AddRate(0, 1, 2)
	c.AddRate(1, 2, 1)
	c.AddRate(1, 0, 0.5)
	c.AddRate(2, 3, 3)
	c.AddRate(2, 1, 0.25)
	c.AddRate(3, 4, 1)
	c.SetAbsorbing(4)
	occ, err := c.ExpectedOccupancy(0)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, o := range occ {
		sum += o
	}
	m1, err := c.MeanAbsorptionTime(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum-m1) > 1e-10 {
		t.Fatalf("Σoccupancy = %v, E[T] = %v", sum, m1)
	}
	if occ[4] != 0 {
		t.Fatal("absorbing state has nonzero occupancy")
	}
}

func TestTransientDistributionTwoState(t *testing.T) {
	// π_0(t) = e^{-rt} exactly.
	r := 1.3
	c := twoStateChain(r)
	for _, tt := range []float64{0, 0.1, 0.5, 1, 3} {
		pi := c.TransientDistribution([]float64{1, 0}, tt, 1e-12)
		want := math.Exp(-r * tt)
		if math.Abs(pi[0]-want) > 1e-9 {
			t.Fatalf("π_0(%v) = %v, want %v", tt, pi[0], want)
		}
		if math.Abs(pi[0]+pi[1]-1) > 1e-9 {
			t.Fatalf("mass not conserved at t=%v", tt)
		}
	}
}

func TestTransientDistributionMatchesODE(t *testing.T) {
	// Cross-validate uniformization against direct RK4 on dπ/dt = πQ.
	c := NewCTMC(4)
	c.AddRate(0, 1, 1.1)
	c.AddRate(1, 0, 0.4)
	c.AddRate(1, 2, 2.0)
	c.AddRate(2, 3, 0.8)
	c.AddRate(2, 0, 0.3)
	c.SetAbsorbing(3)
	q := c.Generator()
	f := func(_ float64, y, dst []float64) {
		res := q.VecMul(y)
		copy(dst, res)
	}
	pi0 := []float64{1, 0, 0, 0}
	for _, tt := range []float64{0.3, 1.0, 2.5} {
		uni := c.TransientDistribution(pi0, tt, 1e-12)
		rk := ode.RK4(f, pi0, 0, tt, 4000)
		for i := range uni {
			if math.Abs(uni[i]-rk[i]) > 1e-7 {
				t.Fatalf("t=%v state %d: uniformization %v vs RK4 %v", tt, i, uni[i], rk[i])
			}
		}
	}
}

func TestAbsorptionDensityExponential(t *testing.T) {
	r := 2.0
	c := twoStateChain(r)
	times := []float64{0, 0.25, 0.5, 1, 2}
	f := c.AbsorptionDensity([]float64{1, 0}, times, 1e-12)
	for i, tt := range times {
		want := r * math.Exp(-r*tt)
		if math.Abs(f[i]-want) > 1e-9 {
			t.Fatalf("f(%v) = %v, want %v", tt, f[i], want)
		}
	}
}

func TestAbsorptionDensityIntegratesToOne(t *testing.T) {
	c := NewCTMC(4)
	c.AddRate(0, 1, 1)
	c.AddRate(1, 2, 2)
	c.AddRate(1, 0, 0.5)
	c.AddRate(2, 3, 1.5)
	c.SetAbsorbing(3)
	// Trapezoid over a long horizon.
	const dt = 0.01
	times := make([]float64, 3001)
	for i := range times {
		times[i] = float64(i) * dt
	}
	f := c.AbsorptionDensity([]float64{1, 0, 0, 0}, times, 1e-12)
	integral := 0.0
	for i := 1; i < len(times); i++ {
		integral += (f[i] + f[i-1]) / 2 * dt
	}
	if math.Abs(integral-1) > 1e-3 {
		t.Fatalf("∫f = %v, want 1", integral)
	}
}

func TestAbsorptionCDFMatchesDensityIntegral(t *testing.T) {
	c := NewCTMC(3)
	c.AddRate(0, 1, 1)
	c.AddRate(1, 2, 2)
	c.SetAbsorbing(2)
	pi0 := []float64{1, 0, 0}
	const dt = 0.005
	times := make([]float64, 601)
	for i := range times {
		times[i] = float64(i) * dt
	}
	f := c.AbsorptionDensity(pi0, times, 1e-12)
	cdf := c.AbsorptionCDF(pi0, times, 1e-12)
	integral := 0.0
	for i := 1; i < len(times); i++ {
		integral += (f[i] + f[i-1]) / 2 * dt
		if math.Abs(integral-cdf[i]) > 1e-4 {
			t.Fatalf("∫f(0..%v)=%v vs CDF %v", times[i], integral, cdf[i])
		}
	}
}

func TestMeanFromDensityMatchesLinearSolve(t *testing.T) {
	// E[T] = ∫ t f(t) dt must match the LU-based moment.
	c := NewCTMC(4)
	c.AddRate(0, 1, 2)
	c.AddRate(1, 2, 1)
	c.AddRate(2, 0, 0.4)
	c.AddRate(2, 3, 2.2)
	c.SetAbsorbing(3)
	m1, err := c.MeanAbsorptionTime(0)
	if err != nil {
		t.Fatal(err)
	}
	const dt = 0.01
	times := make([]float64, 4001)
	for i := range times {
		times[i] = float64(i) * dt
	}
	f := c.AbsorptionDensity([]float64{1, 0, 0, 0}, times, 1e-12)
	integral := 0.0
	for i := 1; i < len(times); i++ {
		integral += (times[i]*f[i] + times[i-1]*f[i-1]) / 2 * dt
	}
	if math.Abs(integral-m1) > 5e-3*m1 {
		t.Fatalf("∫t·f = %v vs E[T] = %v", integral, m1)
	}
}

func TestUniformizedRowsSumToOne(t *testing.T) {
	c := NewCTMC(5)
	c.AddRate(0, 1, 3)
	c.AddRate(1, 2, 0.2)
	c.AddRate(2, 3, 1)
	c.AddRate(3, 4, 0.5)
	c.AddRate(3, 0, 0.5)
	c.SetAbsorbing(4)
	d := c.Uniformized(c.MaxOutRate() * 1.5)
	if err := d.Validate(1e-12); err != nil {
		t.Fatal(err)
	}
}

func TestDTMCExpectedVisitsGeometric(t *testing.T) {
	// State 0 self-loops with prob p, absorbs with prob 1-p:
	// E[visits to 0] = 1/(1-p).
	p := 0.75
	d := NewDTMC(2)
	d.AddProb(0, 0, p)
	d.AddProb(0, 1, 1-p)
	d.SetAbsorbing(1)
	v, err := d.ExpectedVisits(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v[0]-4) > 1e-12 {
		t.Fatalf("visits = %v, want 4", v[0])
	}
}

func TestDTMCGamblersRuin(t *testing.T) {
	// Symmetric walk on 0..4 with absorbing ends; from 2 the ruin
	// probabilities are 1/2 each and expected visits are known.
	d := NewDTMC(5)
	for i := 1; i <= 3; i++ {
		d.AddProb(i, i-1, 0.5)
		d.AddProb(i, i+1, 0.5)
	}
	d.SetAbsorbing(0)
	d.SetAbsorbing(4)
	probs, err := d.AbsorptionProbabilities(2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(probs[0]-0.5) > 1e-12 || math.Abs(probs[4]-0.5) > 1e-12 {
		t.Fatalf("ruin probabilities %v", probs)
	}
	v, err := d.ExpectedVisits(2)
	if err != nil {
		t.Fatal(err)
	}
	// For the symmetric walk from the middle of 0..4: N(2,·) = (1, 2, 1).
	if math.Abs(v[1]-1) > 1e-12 || math.Abs(v[2]-2) > 1e-12 || math.Abs(v[3]-1) > 1e-12 {
		t.Fatalf("visits = %v", v)
	}
}

func TestExpectedTransitionCount(t *testing.T) {
	p := 0.6
	d := NewDTMC(3)
	d.AddProb(0, 1, p)
	d.AddProb(0, 2, 1-p)
	d.AddProb(1, 0, 1)
	d.SetAbsorbing(2)
	v, err := d.ExpectedVisits(0)
	if err != nil {
		t.Fatal(err)
	}
	// Visits to 0 form a geometric with success prob 1-p ⇒ E = 1/(1-p).
	want0 := 1 / (1 - p)
	if math.Abs(v[0]-want0) > 1e-12 {
		t.Fatalf("visits(0) = %v", v[0])
	}
	if got := d.ExpectedTransitionCount(v, 0, 1); math.Abs(got-p*want0) > 1e-12 {
		t.Fatalf("E[0→1 traversals] = %v", got)
	}
}

func TestPoissonWeightsSumToOne(t *testing.T) {
	for _, lt := range []float64{0.001, 0.5, 5, 50, 500} {
		w := poissonWeights(lt, 1e-12)
		sum := 0.0
		for _, v := range w {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("Poisson weights for Λt=%v sum to %v", lt, sum)
		}
	}
}

func TestGeneratorRowSumsZeroProperty(t *testing.T) {
	f := func(seed int64) bool {
		// Random small chain; generator rows must sum to ~0.
		r := seed
		next := func() float64 {
			r = r*6364136223846793005 + 1442695040888963407
			return float64((r>>33)&0xffff) / 65536.0
		}
		c := NewCTMC(6)
		for u := 0; u < 5; u++ {
			for v := 0; v < 6; v++ {
				if u != v {
					c.AddRate(u, v, next())
				}
			}
		}
		c.SetAbsorbing(5)
		q := c.Generator()
		for u := 0; u < 6; u++ {
			s := 0.0
			for v := 0; v < 6; v++ {
				s += q.At(u, v)
			}
			if math.Abs(s) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestAddRateAccumulates(t *testing.T) {
	c := NewCTMC(2)
	c.AddRate(0, 1, 1)
	c.AddRate(0, 1, 2)
	if c.OutRate(0) != 3 {
		t.Fatalf("accumulated rate = %v", c.OutRate(0))
	}
	if len(c.Transitions(0)) != 1 {
		t.Fatal("duplicate entries not merged")
	}
}

func TestAbsorbingGuards(t *testing.T) {
	c := NewCTMC(2)
	c.SetAbsorbing(1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic adding transition out of absorbing state")
		}
	}()
	c.AddRate(1, 0, 1)
}

func TestAbsorptionMomentsFromAbsorbingStart(t *testing.T) {
	c := twoStateChain(1)
	m1, m2, err := c.AbsorptionMoments(1)
	if err != nil || m1 != 0 || m2 != 0 {
		t.Fatalf("absorbing start: %v %v %v", m1, m2, err)
	}
}
