package markov

import (
	"context"
	"errors"
	"math"
	"testing"

	"recoveryblocks/internal/guard"
)

// ladderChain builds a birth–death absorbing chain with n transient states:
// state i moves up at rate 2 (toward absorption at state n) and back down at
// rate 1, so absorption is certain but paths wander. Its moments have no
// simple closed form, which is exactly what the cross-route agreement tests
// want: four independent numerical routes to one number.
func ladderChain(n int) *CTMC {
	c := NewCTMC(n + 1)
	for i := 0; i < n; i++ {
		c.AddRate(i, i+1, 2)
		if i > 0 {
			c.AddRate(i, i-1, 1)
		}
	}
	c.SetAbsorbing(n)
	return c
}

// TestMomentLadderRouteAgreement forces each rung of the absorption-moment
// ladder in turn and checks every alternate reproduces the primary's answer:
// the exact routes to solver tolerance, the Monte Carlo estimate to a few
// standard errors of its own noise (the xval-style equivalence bound).
func TestMomentLadderRouteAgreement(t *testing.T) {
	c := ladderChain(40)
	m1, m2, err := c.AbsorptionMoments(0)
	if err != nil {
		t.Fatalf("healthy solve: %v", err)
	}

	for depth := 1; depth <= 3; depth++ {
		ctx := guard.WithFaults(context.Background(), guard.FaultSpec{Depth: depth})
		rec := &guard.Recorder{}
		ctx = guard.WithRecorder(ctx, rec)
		f1, f2, err := c.AbsorptionMomentsCtx(ctx, 0)
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		ev := rec.Events()
		if len(ev) != 1 || ev[0].Attempt != depth {
			t.Fatalf("depth %d: events = %+v, want one fallback at rung %d", depth, ev, depth)
		}
		var tol1, tol2 float64
		if depth < 3 {
			// Exact-quality rungs (sparse-GS, uniformization): solver tolerance.
			tol1, tol2 = 1e-6*m1, 1e-6*m2
			if ev[0].Degraded {
				t.Fatalf("depth %d: exact rung flagged degraded", depth)
			}
		} else {
			// MC estimate: var(T) = E[T²]−E[T]², SE = √(var/reps); allow 5 SE.
			se := math.Sqrt((m2 - m1*m1) / mcMomentReps)
			tol1 = 5 * se
			tol2 = 5 * se * 3 * m1 // d(T²) ≈ 2T·dT, with slack
			if !ev[0].Degraded {
				t.Fatalf("depth 3: MC rung not flagged degraded")
			}
		}
		if math.Abs(f1-m1) > tol1 {
			t.Fatalf("depth %d: m1 = %v, want %v ± %v", depth, f1, m1, tol1)
		}
		if math.Abs(f2-m2) > tol2 {
			t.Fatalf("depth %d: m2 = %v, want %v ± %v", depth, f2, m2, tol2)
		}
	}
}

// TestMomentLadderSaturatingDepth pins the acceptance criterion: at any
// injection depth — chaos's max magnitude included — the solve still answers,
// from the last (degraded) rung.
func TestMomentLadderSaturatingDepth(t *testing.T) {
	c := ladderChain(12)
	ctx := guard.WithFaults(context.Background(), guard.FaultSpec{Depth: 16})
	rec := &guard.Recorder{}
	ctx = guard.WithRecorder(ctx, rec)
	m1, _, err := c.AbsorptionMomentsCtx(ctx, 0)
	if err != nil {
		t.Fatalf("saturating depth: %v", err)
	}
	if !rec.Degraded() {
		t.Fatal("saturating depth must land on the degraded rung")
	}
	if !(m1 > 0) || math.IsInf(m1, 0) {
		t.Fatalf("m1 = %v, want positive finite", m1)
	}
}

func TestMomentLadderLargeChainStartsSparse(t *testing.T) {
	c := ladderChain(SparseCutoff + 10) // transient count past the cutoff
	want1, want2, err := c.AbsorptionMomentsDense(0)
	if err != nil {
		t.Fatalf("dense reference: %v", err)
	}
	// Depth 1 on a sparse-primary ladder lands on uniformization.
	ctx := guard.WithFaults(context.Background(), guard.FaultSpec{Depth: 1})
	rec := &guard.Recorder{}
	ctx = guard.WithRecorder(ctx, rec)
	m1, m2, err := c.AbsorptionMomentsCtx(ctx, 0)
	if err != nil {
		t.Fatalf("depth 1: %v", err)
	}
	ev := rec.Events()
	if len(ev) != 1 || ev[0].Route != "uniformization" {
		t.Fatalf("events = %+v, want uniformization fallback", ev)
	}
	if math.Abs(m1-want1) > 1e-6*want1 || math.Abs(m2-want2) > 1e-6*want2 {
		t.Fatalf("uniformization moments (%v, %v) disagree with dense (%v, %v)", m1, m2, want1, want2)
	}
}

func TestMomentLadderUnreachableAbsorptionAborts(t *testing.T) {
	c := NewCTMC(3)
	c.AddRate(0, 1, 1)
	c.AddRate(1, 0, 1) // states 0,1 cycle; absorbing state 2 unreachable
	c.SetAbsorbing(2)
	_, _, err := c.AbsorptionMoments(0)
	if !errors.Is(err, guard.ErrInvalid) {
		t.Fatalf("err = %v, want ErrInvalid (structural, no ladder walk)", err)
	}
}

func TestMomentLadderCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := ladderChain(8).AbsorptionMomentsCtx(ctx, 0)
	if !errors.Is(err, guard.ErrBudget) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrBudget wrapping Canceled", err)
	}
}

// TestMomentMCDeterministic pins the last-resort estimate's reproducibility:
// it draws from fixed internal substreams, so repeated runs are bit-equal.
func TestMomentMCDeterministic(t *testing.T) {
	c := ladderChain(10)
	a, err := func() (momentSolution, error) { return c.absorptionMomentsMC(context.Background(), 0) }()
	if err != nil {
		t.Fatalf("mc: %v", err)
	}
	b, err := c.absorptionMomentsMC(context.Background(), 0)
	if err != nil {
		t.Fatalf("mc: %v", err)
	}
	if a.m1 != b.m1 || a.m2 != b.m2 {
		t.Fatalf("MC estimate not deterministic: (%v,%v) vs (%v,%v)", a.m1, a.m2, b.m1, b.m2)
	}
}

// TestUniformizedMomentsMassConservation exercises the third rung directly on
// a chain with an exact answer: a pure Exp(λ) absorption has E[T] = 1/λ and
// E[T²] = 2/λ².
func TestUniformizedMomentsMassConservation(t *testing.T) {
	c := NewCTMC(2)
	c.AddRate(0, 1, 4)
	c.SetAbsorbing(1)
	s, err := c.absorptionMomentsUniformized(context.Background(), 0)
	if err != nil {
		t.Fatalf("uniformized: %v", err)
	}
	if math.Abs(s.m1-0.25) > 1e-10 || math.Abs(s.m2-0.125) > 1e-10 {
		t.Fatalf("moments (%v, %v), want (0.25, 0.125)", s.m1, s.m2)
	}
}
