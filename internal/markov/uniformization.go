package markov

import (
	"math"

	"recoveryblocks/internal/linalg"
	"recoveryblocks/internal/obs"
)

// poissonWeights returns the Poisson(Λt) probabilities w_k for k = 0..K,
// where K is chosen so that the truncated tail mass is below eps. Weights are
// computed in log space to stay stable for large Λt.
func poissonWeights(lambdaT, eps float64) []float64 {
	if lambdaT < 0 {
		panic("markov: negative uniformization horizon")
	}
	if lambdaT == 0 {
		return []float64{1}
	}
	// Upper bound on the needed K: mean + 10 std deviations, at least 30.
	bound := int(lambdaT + 10*math.Sqrt(lambdaT) + 30)
	w := make([]float64, 0, bound+1)
	sum := 0.0
	for k := 0; k <= bound; k++ {
		lg, _ := math.Lgamma(float64(k + 1))
		logw := -lambdaT + float64(k)*math.Log(lambdaT) - lg
		wk := math.Exp(logw)
		w = append(w, wk)
		sum += wk
		if k > int(lambdaT) && 1-sum < eps {
			break
		}
	}
	return w
}

// uniformizedStepper holds the uniformized jump chain P = I + Q/gamma in CSR
// form plus the two ping-pong distribution buffers, so that evaluating a
// whole transient trajectory builds the chain once and allocates nothing per
// step. (The previous implementation rebuilt P — one allocation per chain
// row — for every requested time point; CDF evaluations on fine grids pay
// thousands of time points.)
type uniformizedStepper struct {
	p              *linalg.CSR
	gamma          float64
	cur, next, acc []float64
	// matvecs is resolved once at stepper construction (nil when obs is off;
	// nil-safe Add), so the per-advance accounting is one atomic add — never
	// a registry lookup inside the trajectory sweep.
	matvecs *obs.Counter
}

// newStepper uniformizes the chain at its maximum departure rate. A gamma of
// zero (no transitions anywhere) yields a nil stepper; callers treat the
// distribution as constant.
func (c *CTMC) newStepper(pi0 []float64) *uniformizedStepper {
	if len(pi0) != c.n {
		panic("markov: initial distribution length mismatch")
	}
	gamma := c.MaxOutRate()
	if gamma == 0 {
		return nil
	}
	nnz := 1 // rows plus room for the self-loop each row may carry
	for u := 0; u < c.n; u++ {
		nnz += len(c.rows[u]) + 1
	}
	b := linalg.NewCSRBuilder(c.n, nnz)
	for u := 0; u < c.n; u++ {
		if c.absorbing[u] {
			b.Add(u, u, 1) // absorbing states hold their mass
			continue
		}
		stay := 1.0
		for _, e := range c.rows[u] {
			b.Add(u, e.To, e.Rate/gamma)
			stay -= e.Rate / gamma
		}
		if stay > 0 {
			b.Add(u, u, stay)
		}
	}
	s := &uniformizedStepper{
		p:       b.Build(),
		gamma:   gamma,
		cur:     append([]float64(nil), pi0...),
		next:    make([]float64, c.n),
		acc:     make([]float64, c.n),
		matvecs: obs.C("markov_uniformization_matvecs_total"),
	}
	return s
}

// advance evolves the held distribution by time dt with truncation error eps
// (in total variation), accumulating Σ_k Pois(γ·dt; k)·π·Pᵏ.
func (s *uniformizedStepper) advance(dt, eps float64) {
	if dt == 0 {
		return
	}
	w := poissonWeights(s.gamma*dt, eps)
	s.matvecs.Add(int64(len(w) - 1))
	out := s.acc
	for i := range out {
		out[i] = 0
	}
	for k, wk := range w {
		if k > 0 {
			// One uniformized step π ← π·P: a transposed CSR scatter.
			s.p.MulVecTransInto(s.next, s.cur)
			s.cur, s.next = s.next, s.cur
		}
		if wk == 0 {
			continue
		}
		for i, v := range s.cur {
			out[i] += wk * v
		}
	}
	copy(s.cur, out)
}

// TransientDistribution computes π(t) = π(0)·e^{Qt} by uniformization:
// π(t) = Σ_k Pois(Λt; k)·π(0)·Pᵏ with P = I + Q/Λ. eps bounds the truncation
// error in total variation.
func (c *CTMC) TransientDistribution(pi0 []float64, t, eps float64) []float64 {
	s := c.newStepper(pi0)
	if s == nil || t == 0 {
		return append([]float64(nil), pi0...)
	}
	s.advance(t, eps)
	return append([]float64(nil), s.cur...)
}

// TransientTrajectory evaluates π(t) at each requested time (nondecreasing,
// starting ≥ 0), stepping one uniformized chain incrementally so the cost is
// proportional to the total horizon rather than the number of sample points
// squared, and the chain is assembled exactly once for the whole sweep.
func (c *CTMC) TransientTrajectory(pi0 []float64, times []float64, eps float64) [][]float64 {
	out := make([][]float64, len(times))
	s := c.newStepper(pi0)
	last := 0.0
	for i, t := range times {
		if t < last {
			panic("markov: TransientTrajectory times must be nondecreasing")
		}
		if s == nil {
			out[i] = append([]float64(nil), pi0...)
			continue
		}
		if t > last {
			s.advance(t-last, eps)
			last = t
		}
		out[i] = append([]float64(nil), s.cur...)
	}
	return out
}

// AbsorptionDensity evaluates the density of the absorption time at the given
// times: f(t) = Σ_u π_u(t)·(rate from u into absorbing states).
func (c *CTMC) AbsorptionDensity(pi0 []float64, times []float64, eps float64) []float64 {
	absorb := make([]float64, c.n)
	for u := 0; u < c.n; u++ {
		if !c.absorbing[u] {
			absorb[u] = c.AbsorbRate(u)
		}
	}
	traj := c.TransientTrajectory(pi0, times, eps)
	f := make([]float64, len(times))
	for i, pi := range traj {
		s := 0.0
		for u, p := range pi {
			s += p * absorb[u]
		}
		f[i] = s
	}
	return f
}

// AbsorptionCDF evaluates P(absorbed by t) at the given times as the total
// probability mass sitting in absorbing states.
func (c *CTMC) AbsorptionCDF(pi0 []float64, times []float64, eps float64) []float64 {
	traj := c.TransientTrajectory(pi0, times, eps)
	out := make([]float64, len(times))
	for i, pi := range traj {
		s := 0.0
		for u, p := range pi {
			if c.absorbing[u] {
				s += p
			}
		}
		out[i] = s
	}
	return out
}
