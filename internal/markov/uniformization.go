package markov

import "math"

// poissonWeights returns the Poisson(Λt) probabilities w_k for k = 0..K,
// where K is chosen so that the truncated tail mass is below eps. Weights are
// computed in log space to stay stable for large Λt.
func poissonWeights(lambdaT, eps float64) []float64 {
	if lambdaT < 0 {
		panic("markov: negative uniformization horizon")
	}
	if lambdaT == 0 {
		return []float64{1}
	}
	// Upper bound on the needed K: mean + 10 std deviations, at least 30.
	bound := int(lambdaT + 10*math.Sqrt(lambdaT) + 30)
	w := make([]float64, 0, bound+1)
	sum := 0.0
	for k := 0; k <= bound; k++ {
		lg, _ := math.Lgamma(float64(k + 1))
		logw := -lambdaT + float64(k)*math.Log(lambdaT) - lg
		wk := math.Exp(logw)
		w = append(w, wk)
		sum += wk
		if k > int(lambdaT) && 1-sum < eps {
			break
		}
	}
	return w
}

// TransientDistribution computes π(t) = π(0)·e^{Qt} by uniformization:
// π(t) = Σ_k Pois(Λt; k)·π(0)·Pᵏ with P = I + Q/Λ. eps bounds the truncation
// error in total variation.
func (c *CTMC) TransientDistribution(pi0 []float64, t, eps float64) []float64 {
	if len(pi0) != c.n {
		panic("markov: initial distribution length mismatch")
	}
	if t == 0 {
		return append([]float64(nil), pi0...)
	}
	gamma := c.MaxOutRate()
	if gamma == 0 { // no transitions anywhere
		return append([]float64(nil), pi0...)
	}
	p := c.Uniformized(gamma)
	w := poissonWeights(gamma*t, eps)
	cur := append([]float64(nil), pi0...)
	out := make([]float64, c.n)
	for k, wk := range w {
		if k > 0 {
			cur = p.StepDistribution(cur)
		}
		if wk == 0 {
			continue
		}
		for i, v := range cur {
			out[i] += wk * v
		}
	}
	return out
}

// TransientTrajectory evaluates π(t) at each requested time (nondecreasing,
// starting ≥ 0), stepping incrementally so the cost is proportional to the
// total horizon rather than the number of sample points squared.
func (c *CTMC) TransientTrajectory(pi0 []float64, times []float64, eps float64) [][]float64 {
	out := make([][]float64, len(times))
	cur := append([]float64(nil), pi0...)
	last := 0.0
	for i, t := range times {
		if t < last {
			panic("markov: TransientTrajectory times must be nondecreasing")
		}
		if t > last {
			cur = c.TransientDistribution(cur, t-last, eps)
			last = t
		}
		out[i] = append([]float64(nil), cur...)
	}
	return out
}

// AbsorptionDensity evaluates the density of the absorption time at the given
// times: f(t) = Σ_u π_u(t)·(rate from u into absorbing states).
func (c *CTMC) AbsorptionDensity(pi0 []float64, times []float64, eps float64) []float64 {
	absorb := make([]float64, c.n)
	for u := 0; u < c.n; u++ {
		if !c.absorbing[u] {
			absorb[u] = c.AbsorbRate(u)
		}
	}
	traj := c.TransientTrajectory(pi0, times, eps)
	f := make([]float64, len(times))
	for i, pi := range traj {
		s := 0.0
		for u, p := range pi {
			s += p * absorb[u]
		}
		f[i] = s
	}
	return f
}

// AbsorptionCDF evaluates P(absorbed by t) at the given times as the total
// probability mass sitting in absorbing states.
func (c *CTMC) AbsorptionCDF(pi0 []float64, times []float64, eps float64) []float64 {
	traj := c.TransientTrajectory(pi0, times, eps)
	out := make([]float64, len(times))
	for i, pi := range traj {
		s := 0.0
		for u, p := range pi {
			if c.absorbing[u] {
				s += p
			}
		}
		out[i] = s
	}
	return out
}
