package markov

import (
	"errors"
	"math"

	"recoveryblocks/internal/linalg"
)

// DTMC is a finite discrete-time Markov chain stored sparsely. Unlike the
// CTMC, self-loop probabilities are stored explicitly — the paper's
// uniformized chain Y_d has meaningful self-loops (events that do not change
// the state, such as an RP by a process whose last action was already an RP).
type DTMC struct {
	n         int
	rows      [][]Entry
	absorbing []bool
}

// NewDTMC returns an empty chain on n states.
func NewDTMC(n int) *DTMC {
	if n <= 0 {
		panic("markov: DTMC needs at least one state")
	}
	return &DTMC{n: n, rows: make([][]Entry, n), absorbing: make([]bool, n)}
}

// N returns the number of states.
func (d *DTMC) N() int { return d.n }

// AddProb adds transition probability mass from→to. Multiple calls
// accumulate.
func (d *DTMC) AddProb(from, to int, p float64) {
	switch {
	case p < 0:
		panic("markov: negative probability")
	case p == 0:
		return
	case d.absorbing[from]:
		panic("markov: transition out of an absorbing state")
	}
	for i := range d.rows[from] {
		if d.rows[from][i].To == to {
			d.rows[from][i].Rate += p
			return
		}
	}
	d.rows[from] = append(d.rows[from], Entry{To: to, Rate: p})
}

// SetAbsorbing marks a state absorbing, discarding its outgoing mass.
func (d *DTMC) SetAbsorbing(state int) {
	d.absorbing[state] = true
	d.rows[state] = nil
}

// IsAbsorbing reports whether state is absorbing.
func (d *DTMC) IsAbsorbing(state int) bool { return d.absorbing[state] }

// Transitions returns the outgoing transitions of state (shared; read-only).
func (d *DTMC) Transitions(state int) []Entry { return d.rows[state] }

// RowSum returns the outgoing probability mass of a state.
func (d *DTMC) RowSum(state int) float64 {
	s := 0.0
	for _, e := range d.rows[state] {
		s += e.Rate
	}
	return s
}

// Validate checks that every non-absorbing row sums to 1 within tol.
func (d *DTMC) Validate(tol float64) error {
	for u := 0; u < d.n; u++ {
		if d.absorbing[u] {
			continue
		}
		if math.Abs(d.RowSum(u)-1) > tol {
			return errors.New("markov: DTMC row does not sum to 1")
		}
	}
	return nil
}

// StepDistribution returns π·P for a row distribution π.
func (d *DTMC) StepDistribution(pi []float64) []float64 {
	if len(pi) != d.n {
		panic("markov: distribution length mismatch")
	}
	out := make([]float64, d.n)
	for u, p := range pi {
		if p == 0 {
			continue
		}
		if d.absorbing[u] {
			out[u] += p
			continue
		}
		for _, e := range d.rows[u] {
			out[e.To] += p * e.Rate
		}
	}
	return out
}

// ExpectedVisits returns, for each transient state, the expected number of
// epochs spent there (counting the initial epoch) before absorption when
// starting from start. Absorbing states report 0. This is the row of the
// fundamental matrix N = (I−Q)⁻¹ — the quantity the paper extracts from the
// split chain Y_d to count saved states.
func (d *DTMC) ExpectedVisits(start int) ([]float64, error) {
	visits := make([]float64, d.n)
	if d.absorbing[start] {
		return visits, nil
	}
	idx := make([]int, d.n)
	var order []int
	for u := 0; u < d.n; u++ {
		if d.absorbing[u] {
			idx[u] = -1
			continue
		}
		idx[u] = len(order)
		order = append(order, u)
	}
	nt := len(order)
	// Solve vᵀ(I−Q) = e_startᵀ, i.e. (I−Q)ᵀ v = e_start.
	m := linalg.NewMatrix(nt, nt)
	for k, u := range order {
		m.Add(k, k, 1)
		for _, e := range d.rows[u] {
			if j := idx[e.To]; j >= 0 {
				m.Add(j, k, -e.Rate)
			}
		}
	}
	rhs := make([]float64, nt)
	rhs[idx[start]] = 1
	v, err := linalg.SolveLinear(m, rhs)
	if err != nil {
		return nil, errors.New("markov: chain has transient states that never absorb")
	}
	for k, u := range order {
		visits[u] = v[k]
	}
	return visits, nil
}

// ExpectedTransitionCount returns E[#traversals of from→to] before absorption
// starting from start, which is visits(from)·p(from,to). The split-state
// construction of Figure 4 counts arrivals into the split state S_u', which
// equals the sum of such transition counts over the tagged edges.
func (d *DTMC) ExpectedTransitionCount(visits []float64, from, to int) float64 {
	for _, e := range d.rows[from] {
		if e.To == to {
			return visits[from] * e.Rate
		}
	}
	return 0
}

// AbsorptionProbabilities returns, for each absorbing state a, the
// probability of being absorbed in a when starting from start.
func (d *DTMC) AbsorptionProbabilities(start int) (map[int]float64, error) {
	visits, err := d.ExpectedVisits(start)
	if err != nil {
		return nil, err
	}
	out := make(map[int]float64)
	if d.absorbing[start] {
		out[start] = 1
		return out, nil
	}
	for u := 0; u < d.n; u++ {
		if visits[u] == 0 {
			continue
		}
		for _, e := range d.rows[u] {
			if d.absorbing[e.To] {
				out[e.To] += visits[u] * e.Rate
			}
		}
	}
	return out, nil
}
