package markov

// This file extends the absorbing-chain routing one regime past CSR: the
// matrix-free Kronecker–Krylov engine. Dense LU handles transient spaces
// below SparseCutoff, the CSR two-level solver carries the mid range, and at
// KronCutoff transient states even the CSR rows stop fitting a sane budget —
// 2^n states × O(n²) entries each — so the generator is never enumerated at
// all. MatrixFree runs the same absorption solves against a linalg.Operator
// (in practice a linalg.KronOp built by rbmodel from the per-process factor
// structure), with restarted GMRES for the moment systems, matrix-free
// uniformization and a jump-chain estimate as fallback rungs, and Krylov
// exponentials for the transient distributions.

import (
	"context"
	"math"
	"sort"

	"recoveryblocks/internal/dist"
	"recoveryblocks/internal/guard"
	"recoveryblocks/internal/linalg"
	"recoveryblocks/internal/obs"
)

// KronCutoff is the transient-state count at and above which rbmodel stops
// enumerating the 2^n+1-state chain into markov.CTMC and builds the
// matrix-free Kronecker engine instead. 2^16 transient states (n = 16, the
// historical MaxExactProcesses wall) still enumerate — keeping every
// pre-existing healthy path byte-identical — while n ≥ 17 routes matrix-free.
const KronCutoff = 1 << 17

const (
	// kronRestart and kronMaxIters parameterize the GMRES rung: Krylov
	// dimension per restart cycle (memory = kronRestart+1 state-space
	// vectors) and the total Arnoldi-step budget across both moment systems'
	// cycles.
	kronRestart  = 40
	kronMaxIters = 4000
	// kronMCReps sizes the last-resort jump-chain estimate. Far fewer
	// replications than the enumerated ladder's mcMomentReps: each jump
	// re-enumerates its row on the fly (the whole point is never holding
	// 2^n rows), so a replication costs O(jumps·n²) instead of O(jumps·n).
	// The route is flagged Degraded either way.
	kronMCReps = 2048
)

// MatrixFreeSpec assembles a MatrixFree engine. Op is the transient
// generator Q_T; the absorbing state is implicit (row deficits are the
// absorption rates).
type MatrixFreeSpec struct {
	// Op applies Q_T, the transient block of the generator.
	Op linalg.Operator
	// Gamma must dominate every total out-rate (absorption included); it is
	// the uniformization constant and, via ‖Q_T‖∞ ≤ 2·Gamma, the norm bound
	// of the acceptance test and the GMRES stopping rule.
	Gamma float64
	// Start is the initial transient state index.
	Start int
	// AbsorbIdx/AbsorbRate list the states with direct absorption
	// transitions and their rates — the sparse deficit vector, all the
	// engine needs of the absorbing boundary (the recovery-block cube has
	// n+1 such states out of 2^n).
	AbsorbIdx  []int
	AbsorbRate []float64
	// Precond optionally right-preconditions the forward GMRES solves
	// (dst = M⁻¹·src); PrecondT its transposed counterpart for occupancy.
	// nil runs unpreconditioned.
	Precond  func(dst, src []float64)
	PrecondT func(dst, src []float64)
	// Rows enumerates state u's transitions on the fly for the jump-chain
	// rung: yield(to, rate) per transition, to < 0 meaning absorption. nil
	// disables the rung (it then reports guard.ErrInvalid if reached).
	Rows func(u int, yield func(to int, rate float64))
}

// MatrixFree solves an absorbing chain whose transient generator exists only
// as an operator. It mirrors CTMC's solve surface (moments ladder, expected
// occupancy, absorption density/CDF) above KronCutoff.
type MatrixFree struct {
	spec  MatrixFreeSpec
	op    *countedOp
	dim   int
	gamma float64

	// Counter handles resolved once at construction (nil-safe when obs is
	// off), per the hot-path rule: applying a 2^24-state operator must never
	// pay a registry lookup.
	solves, kiters *obs.Counter
}

// countedOp wraps the operator so every application — GMRES, expv,
// uniformization, acceptance residuals alike — lands in one counter.
type countedOp struct {
	inner   linalg.Operator
	matvecs *obs.Counter
}

func (c *countedOp) Dim() int { return c.inner.Dim() }
func (c *countedOp) MulVecInto(dst, x []float64) {
	c.matvecs.Inc()
	c.inner.MulVecInto(dst, x)
}
func (c *countedOp) MulVecTransInto(dst, x []float64) {
	c.matvecs.Inc()
	c.inner.MulVecTransInto(dst, x)
}

// NewMatrixFree validates the spec and resolves the engine's counter handles.
func NewMatrixFree(spec MatrixFreeSpec) *MatrixFree {
	if spec.Op == nil {
		panic("markov: MatrixFree needs an operator")
	}
	dim := spec.Op.Dim()
	if spec.Start < 0 || spec.Start >= dim {
		panic("markov: MatrixFree start state out of range")
	}
	if spec.Gamma <= 0 {
		panic("markov: MatrixFree needs a positive uniformization constant")
	}
	if len(spec.AbsorbIdx) != len(spec.AbsorbRate) {
		panic("markov: MatrixFree absorption index/rate length mismatch")
	}
	return &MatrixFree{
		spec:   spec,
		op:     &countedOp{inner: spec.Op, matvecs: obs.C("markov_kron_matvecs_total")},
		dim:    dim,
		gamma:  spec.Gamma,
		solves: obs.C("markov_solve_kron_total"),
		kiters: obs.C("markov_krylov_iters_total"),
	}
}

// Dim returns the transient-state count.
func (m *MatrixFree) Dim() int { return m.dim }

// AbsorptionMoments is AbsorptionMomentsCtx without cancellation or fault
// injection.
func (m *MatrixFree) AbsorptionMoments() (m1, m2 float64, err error) {
	return m.AbsorptionMomentsCtx(context.Background())
}

// AbsorptionMomentsCtx returns E[T] and E[T²] of the absorption time from
// Start, run as a recovery block like the enumerated ladder: the rungs are
// kron-krylov (restarted GMRES on Q_T·h = −1 and Q_T·h2 = −2·h) →
// kron-uniformization (transient-mass sums on the matrix-free uniformized
// chain) → kron-mc (on-the-fly jump-chain estimate, Degraded), each candidate
// vetted by the same NaN/Inf + Jensen + normwise-residual acceptance test —
// the residuals evaluated with two extra operator applications, since there
// are no rows to sweep.
func (m *MatrixFree) AbsorptionMomentsCtx(ctx context.Context) (m1, m2 float64, err error) {
	m.solves.Inc()
	krylov := guard.Attempt[momentSolution]{Name: "kron-krylov", Run: m.momentsKrylov}
	unif := guard.Attempt[momentSolution]{Name: "kron-uniformization", Run: m.momentsUniformized}
	mcEst := guard.Attempt[momentSolution]{Name: "kron-mc", Degraded: true, Run: m.momentsMC}
	b := guard.Block[momentSolution]{
		Name:       "markov/absorption-moments",
		Accept:     m.acceptMoments,
		Primary:    krylov,
		Alternates: []guard.Attempt[momentSolution]{unif, mcEst},
	}
	res, err := b.Do(ctx)
	if err != nil {
		return 0, 0, err
	}
	return res.Value.m1, res.Value.m2, nil
}

// momentsKrylov is the primary rung: right-preconditioned restarted GMRES on
// the two moment systems, sharing one iteration budget.
func (m *MatrixFree) momentsKrylov(ctx context.Context) (momentSolution, error) {
	rhs := make([]float64, m.dim)
	for i := range rhs {
		rhs[i] = -1
	}
	opts := linalg.GMRESOpts{
		Restart:  kronRestart,
		MaxIters: kronMaxIters,
		Tol:      gsTol,
		NormA:    2 * m.gamma,
		Precond:  m.spec.Precond,
	}
	h, it1, err := linalg.SolveGMRES(m.op, false, rhs, opts)
	m.kiters.Add(int64(it1))
	if err != nil {
		return momentSolution{}, guard.Numericalf("markov: kron first-moment GMRES: %v", err)
	}
	if err := ctx.Err(); err != nil {
		return momentSolution{}, err
	}
	for i := range rhs {
		rhs[i] = -2 * h[i]
	}
	opts.MaxIters = max(1, kronMaxIters-it1)
	h2, it2, err := linalg.SolveGMRES(m.op, false, rhs, opts)
	m.kiters.Add(int64(it2))
	if err != nil {
		return momentSolution{}, guard.Numericalf("markov: kron second-moment GMRES: %v", err)
	}
	return momentSolution{m1: h[m.spec.Start], m2: h2[m.spec.Start], h: h, h2: h2}, nil
}

// acceptMoments mirrors the enumerated ladder's acceptance test on the
// matrix-free operator: finiteness, Jensen consistency, and — when the rung
// exposes its solution vectors — normwise residuals of both systems, with
// ‖Q_T‖∞ bounded by 2γ (every row's diagonal and off-diagonal mass are each
// at most the maximum out-rate).
func (m *MatrixFree) acceptMoments(s momentSolution) error {
	if math.IsNaN(s.m1) || math.IsInf(s.m1, 0) || math.IsNaN(s.m2) || math.IsInf(s.m2, 0) {
		return guard.Rejectedf("non-finite moments E[T]=%v, E[T²]=%v", s.m1, s.m2)
	}
	if s.m1 < 0 || s.m2 < s.m1*s.m1*(1-1e-9) {
		return guard.Rejectedf("inconsistent moments E[T]=%v, E[T²]=%v", s.m1, s.m2)
	}
	if s.h == nil {
		return nil
	}
	normA := 2 * m.gamma
	r := make([]float64, m.dim)
	m.op.MulVecInto(r, s.h)
	var res1, normH float64
	for i, v := range r {
		res1 = math.Max(res1, math.Abs(v+1)) // Q_T·h − (−1)
		normH = math.Max(normH, math.Abs(s.h[i]))
	}
	if rel := res1 / (normA*normH + 1); !(rel <= residualRelTol) {
		return guard.Rejectedf("first-moment residual %.3e exceeds %.0e", rel, residualRelTol)
	}
	m.op.MulVecInto(r, s.h2)
	var res2, normH2 float64
	for i, v := range r {
		res2 = math.Max(res2, math.Abs(v+2*s.h[i])) // Q_T·h2 − (−2h)
		normH2 = math.Max(normH2, math.Abs(s.h2[i]))
	}
	if rel := res2 / (normA*normH2 + 2*normH); !(rel <= residualRelTol) {
		return guard.Rejectedf("second-moment residual %.3e exceeds %.0e", rel, residualRelTol)
	}
	return nil
}

// momentsUniformized is the second rung: the transient-mass sums of the
// enumerated ladder, with the uniformized step π ← π + (Q_Tᵀ·π)/γ applied
// through the operator instead of a CSR scatter. The absorbing state is
// implicit, so the transient mass is simply Σ_s π_s; the same conservation
// guard applies (mass must stay in [0, 1] and never grow).
func (m *MatrixFree) momentsUniformized(ctx context.Context) (momentSolution, error) {
	cur := make([]float64, m.dim)
	cur[m.spec.Start] = 1
	tmp := make([]float64, m.dim)
	var eN, eNN float64
	prev := math.Inf(1)
	mass := 0.0
	k := 0
	for ; k < maxUnifSteps; k++ {
		mass = linalg.Sum(cur)
		if mass > prev*(1+1e-12) || mass > 1+1e-9 {
			return momentSolution{}, guard.Numericalf("markov: kron uniformization lost probability-mass conservation at step %d (mass %v after %v)", k, mass, prev)
		}
		prev = mass
		eN += mass
		eNN += float64(k+1) * mass
		if mass < unifMassTol {
			break
		}
		if k%64 == 0 {
			if err := ctx.Err(); err != nil {
				return momentSolution{}, err
			}
		}
		m.op.MulVecTransInto(tmp, cur)
		for i, v := range tmp {
			cur[i] += v / m.gamma
		}
	}
	if mass >= unifMassTol {
		return momentSolution{}, guard.Numericalf("markov: kron uniformization moments did not converge in %d steps (residual mass %v)", maxUnifSteps, mass)
	}
	g := m.gamma
	return momentSolution{m1: eN / g, m2: 2 * eNN / (g * g)}, nil
}

// momentsMC is the last-resort rung: the deterministic jump-chain estimate
// with rows enumerated on the fly — no per-state tables, O(1) memory beyond
// the replication state. Same fixed internal seed family as the enumerated
// ladder, so the estimate is reproducible for a given chain.
func (m *MatrixFree) momentsMC(ctx context.Context) (momentSolution, error) {
	rows := m.spec.Rows
	if rows == nil {
		return momentSolution{}, guard.Invalidf("markov: matrix-free MC rung needs a row enumerator")
	}
	obs.C("markov_solve_mc_total").Inc()
	var sum, sum2 float64
	for rep := 0; rep < kronMCReps; rep++ {
		if rep%64 == 0 {
			if err := ctx.Err(); err != nil {
				return momentSolution{}, err
			}
		}
		rng := dist.Substream(mcMomentSeed, rep)
		u := m.spec.Start
		t := 0.0
		jumps := 0
		for u >= 0 {
			out := 0.0
			rows(u, func(to int, rate float64) { out += rate })
			if out <= 0 {
				return momentSolution{}, guard.Invalidf("markov: transient state %d with no exits", u)
			}
			t += rng.Exp(out)
			// Streaming inverse-CDF pick: one uniform, a second enumeration
			// pass, no per-row allocation.
			target := rng.Float64() * out
			next := u
			acc := 0.0
			rows(u, func(to int, rate float64) {
				if acc <= target {
					next = to
				}
				acc += rate
			})
			u = next
			if jumps++; jumps > mcMomentJumps {
				return momentSolution{}, guard.Numericalf("markov: kron MC absorption estimate exceeded %d jumps in one replication", mcMomentJumps)
			}
		}
		sum += t
		sum2 += t * t
	}
	return momentSolution{m1: sum / kronMCReps, m2: sum2 / kronMCReps}, nil
}

// ExpectedOccupancy solves oᵀ·Q_T = −e_startᵀ by transposed GMRES: o[s] is
// the expected time spent in transient state s before absorption.
func (m *MatrixFree) ExpectedOccupancy() ([]float64, error) {
	m.solves.Inc()
	rhs := make([]float64, m.dim)
	rhs[m.spec.Start] = -1
	o, iters, err := linalg.SolveGMRES(m.op, true, rhs, linalg.GMRESOpts{
		Restart:  kronRestart,
		MaxIters: kronMaxIters,
		Tol:      gsTol,
		NormA:    2 * m.gamma,
		Precond:  m.spec.PrecondT,
	})
	m.kiters.Add(int64(iters))
	if err != nil {
		return nil, err
	}
	return o, nil
}

// AbsorptionCDF evaluates P(absorbed by t) at the given times (nondecreasing,
// ≥ 0) as 1 minus the surviving transient mass, the transient distribution
// advanced by Krylov exponentials between consecutive times. eps is the
// per-evaluation accuracy target.
func (m *MatrixFree) AbsorptionCDF(times []float64, eps float64) ([]float64, error) {
	return m.transientSweep(times, eps, func(pi []float64) float64 {
		mass := linalg.Sum(pi)
		cdf := 1 - mass
		return math.Min(1, math.Max(0, cdf))
	})
}

// AbsorptionDensity evaluates the absorption-time density at the given times:
// f(t) = Σ_s π_s(t)·a(s) over the sparse absorption-rate vector.
func (m *MatrixFree) AbsorptionDensity(times []float64, eps float64) ([]float64, error) {
	return m.transientSweep(times, eps, func(pi []float64) float64 {
		f := 0.0
		for i, s := range m.spec.AbsorbIdx {
			f += pi[s] * m.spec.AbsorbRate[i]
		}
		return math.Max(0, f)
	})
}

func (m *MatrixFree) transientSweep(times []float64, eps float64, eval func(pi []float64) float64) ([]float64, error) {
	if !sort.Float64sAreSorted(times) {
		panic("markov: matrix-free transient sweep times must be nondecreasing")
	}
	m.solves.Inc()
	if eps <= 0 {
		eps = 1e-10
	}
	pi := make([]float64, m.dim)
	pi[m.spec.Start] = 1
	out := make([]float64, len(times))
	last := 0.0
	for i, t := range times {
		if t < 0 {
			panic("markov: matrix-free transient sweep needs nonnegative times")
		}
		if t > last {
			next, iters, err := linalg.KrylovExpv(m.op, true, pi, t-last, linalg.ExpvOpts{
				KrylovDim: kronRestart,
				Tol:       eps,
			})
			m.kiters.Add(int64(iters))
			if err != nil {
				// Recovery block on the segment: explicit matrix-free
				// uniformization is slower (γ·Δt applications instead of a few
				// Krylov substeps) but cannot suffer step-control breakdown.
				next = m.unifAdvance(pi, t-last, eps)
			}
			pi = next
			last = t
		}
		out[i] = eval(pi)
	}
	return out, nil
}

// unifAdvance evolves the transient distribution by dt with the uniformized
// series Σ_k Pois(γ·dt; k)·π·P_Tᵏ, P_T = I + Q_T/γ, applied through the
// operator. Mass leaking past the truncation or into absorption simply leaves
// the vector — exactly what the sweep's evaluators expect.
func (m *MatrixFree) unifAdvance(pi []float64, dt, eps float64) []float64 {
	w := poissonWeights(m.gamma*dt, eps)
	cur := linalg.CloneVec(pi)
	tmp := make([]float64, m.dim)
	out := make([]float64, m.dim)
	for k, wk := range w {
		if k > 0 {
			m.op.MulVecTransInto(tmp, cur)
			for i, v := range tmp {
				cur[i] += v / m.gamma
			}
		}
		if wk == 0 {
			continue
		}
		for i, v := range cur {
			out[i] += wk * v
		}
	}
	return out
}
