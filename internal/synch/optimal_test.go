package synch

import (
	"math"
	"testing"
)

func TestOverheadRateValidation(t *testing.T) {
	mu := []float64{1, 1, 1}
	if _, err := OverheadRate(mu, 0, 0.1); err == nil {
		t.Fatal("accepted tau=0")
	}
	if _, err := OverheadRate(mu, 1, -1); err == nil {
		t.Fatal("accepted negative theta")
	}
	if _, err := OverheadRate(nil, 1, 0.1); err == nil {
		t.Fatal("accepted empty mu")
	}
}

func TestOverheadRateLimits(t *testing.T) {
	mu := []float64{1, 1, 1}
	// With no errors, overhead decays toward 0 as tau grows.
	small, err := OverheadRate(mu, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	big, err := OverheadRate(mu, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if small >= big {
		t.Fatalf("error-free overhead should fall with tau: %v vs %v", small, big)
	}
	// With errors, overhead grows again for huge tau (rollback dominates).
	atOpt, err := OverheadRate(mu, 3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	huge, err := OverheadRate(mu, 300, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if huge <= atOpt {
		t.Fatalf("rollback loss should dominate at huge tau: %v vs %v", huge, atOpt)
	}
}

func TestOptimalIntervalIsMinimum(t *testing.T) {
	mu := []float64{1.5, 1.0, 0.5}
	theta := 0.02
	tau, over, err := OptimalInterval(mu, theta)
	if err != nil {
		t.Fatal(err)
	}
	if tau <= 0 {
		t.Fatalf("tau = %v", tau)
	}
	// Perturbing the interval in either direction must not reduce the cost.
	for _, factor := range []float64{0.5, 0.8, 1.25, 2.0} {
		v, err := OverheadRate(mu, tau*factor, theta)
		if err != nil {
			t.Fatal(err)
		}
		if v < over-1e-9 {
			t.Fatalf("found cheaper interval %v: %v < %v", tau*factor, v, over)
		}
	}
}

func TestOptimalIntervalScalesWithErrorRate(t *testing.T) {
	mu := []float64{1, 1, 1}
	tauLow, _, err := OptimalInterval(mu, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	tauHigh, _, err := OptimalInterval(mu, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Frequent errors → synchronize more often.
	if tauHigh >= tauLow {
		t.Fatalf("tau should shrink with error rate: %v vs %v", tauHigh, tauLow)
	}
	// Square-root scaling heuristic: tau* ≈ sqrt(2·CL/(θ·n)); check order of
	// magnitude (the exact optimum includes the E[Z] cycle stretch).
	cl, _ := MeanLoss(mu)
	approx := math.Sqrt(2 * cl / (0.001 * 3))
	if tauLow < approx/5 || tauLow > approx*5 {
		t.Fatalf("tau* = %v far from sqrt scaling %v", tauLow, approx)
	}
}

func TestOptimalIntervalValidation(t *testing.T) {
	if _, _, err := OptimalInterval([]float64{1}, 0); err == nil {
		t.Fatal("accepted theta=0")
	}
	if _, _, err := OptimalInterval(nil, 1); err == nil {
		t.Fatal("accepted empty mu")
	}
}
