// Package synch implements the Section 3 analysis of synchronized recovery
// blocks: when a synchronization request is issued, process P_i still needs
// an exponential time y_i ~ Exp(μ_i) to reach its next acceptance test, every
// process then waits for the slowest one (Z = max y_i), and the computation
// power lost to waiting is CL = Σ_i (Z − y_i). The paper derives
//
//	E[CL] = n·∫₀^∞ (1 − G(t)) dt − Σ_i 1/μ_i,  G(t) = Π_i (1 − e^{−μ_i t}).
//
// This package evaluates E[Z] and E[CL] exactly by inclusion–exclusion, by
// numeric integration (as written in the paper), and by Monte Carlo, so the
// three routes cross-validate.
package synch

import (
	"errors"
	"fmt"
	"math"

	"recoveryblocks/internal/dist"
	"recoveryblocks/internal/guard"
	"recoveryblocks/internal/mc"
	"recoveryblocks/internal/stats"
)

// validateRates rejects empty or non-positive rate vectors.
func validateRates(mu []float64) error {
	if len(mu) == 0 {
		return errors.New("synch: need at least one process")
	}
	for i, m := range mu {
		if m <= 0 || math.IsNaN(m) || math.IsInf(m, 0) {
			return fmt.Errorf("synch: μ_%d = %v must be positive and finite", i+1, m)
		}
	}
	return nil
}

// MeanMax returns E[Z] = E[max_i y_i] for independent y_i ~ Exp(μ_i) by
// inclusion–exclusion over nonempty subsets:
//
//	E[Z] = Σ_{∅≠S} (−1)^{|S|+1} / Σ_{i∈S} μ_i.
//
// Exact up to floating point; cost 2^n, fine for the process counts the
// paper considers. For n > 30 use MeanMaxIntegral.
func MeanMax(mu []float64) (float64, error) {
	if err := validateRates(mu); err != nil {
		return 0, err
	}
	n := len(mu)
	if n > 30 {
		return 0, errors.New("synch: MeanMax limited to n ≤ 30; use MeanMaxIntegral")
	}
	total := 0.0
	for s := 1; s < 1<<n; s++ {
		rate := 0.0
		bits := 0
		for i := 0; i < n; i++ {
			if s&(1<<i) != 0 {
				rate += mu[i]
				bits++
			}
		}
		if bits%2 == 1 {
			total += 1 / rate
		} else {
			total -= 1 / rate
		}
	}
	return total, nil
}

// MeanMaxEqual returns E[Z] for n iid Exp(μ): the harmonic number H_n / μ.
func MeanMaxEqual(n int, mu float64) (float64, error) {
	// NaN defeats the ≤ comparison, so reject it explicitly: a NaN rate must
	// surface as a typed error, not as H_n/NaN.
	if n < 1 || mu <= 0 || math.IsNaN(mu) || math.IsInf(mu, 0) {
		return 0, guard.Numericalf("synch: need n ≥ 1 and finite μ > 0 (got n = %d, μ = %v)", n, mu)
	}
	h := 0.0
	for k := 1; k <= n; k++ {
		h += 1 / float64(k)
	}
	return h / mu, nil
}

// MeanMaxIntegral evaluates E[Z] = ∫₀^∞ (1 − G(t)) dt numerically — the form
// in which the paper states the result.
func MeanMaxIntegral(mu []float64) (float64, error) {
	if err := validateRates(mu); err != nil {
		return 0, err
	}
	slowest := mu[0]
	for _, m := range mu {
		if m < slowest {
			slowest = m
		}
	}
	panel := 2 / slowest
	return stats.IntegrateToInf(func(t float64) float64 {
		return 1 - dist.MaxExpCDF(mu, t)
	}, 0, panel, 1e-10)
}

// MeanLoss returns the paper's mean computation-power loss
// E[CL] = n·E[Z] − Σ 1/μ_i for one synchronization of n processes.
func MeanLoss(mu []float64) (float64, error) {
	ez, err := MeanMax(mu)
	if err != nil {
		return 0, err
	}
	loss := float64(len(mu)) * ez
	for _, m := range mu {
		loss -= 1 / m
	}
	return loss, nil
}

// MeanLossIntegral is MeanLoss computed via the integral form of E[Z].
func MeanLossIntegral(mu []float64) (float64, error) {
	ez, err := MeanMaxIntegral(mu)
	if err != nil {
		return 0, err
	}
	loss := float64(len(mu)) * ez
	for _, m := range mu {
		loss -= 1 / m
	}
	return loss, nil
}

// SimulateLoss estimates E[CL] and E[Z] by Monte Carlo with reps independent
// synchronizations, returning (loss, z) accumulators with means and 95% CIs.
// It runs on one worker; SimulateLossWorkers shards the replications across
// a pool with identical results.
func SimulateLoss(mu []float64, reps int, seed int64) (loss, z stats.Welford, err error) {
	return SimulateLossWorkers(mu, reps, seed, 1)
}

// SimulateLossWorkers is SimulateLoss on the internal/mc worker pool:
// workers > 0 means exactly that many goroutines, anything else means
// runtime.NumCPU(). Replications are sharded into fixed blocks seeded by
// dist.Substream(seed, block) and merged in block order, so for a fixed
// seed the result is bit-identical for every worker count.
func SimulateLossWorkers(mu []float64, reps int, seed int64, workers int) (loss, z stats.Welford, err error) {
	if err := validateRates(mu); err != nil {
		return loss, z, err
	}
	if reps < 1 {
		return loss, z, errors.New("synch: reps must be ≥ 1")
	}
	type block struct{ loss, z stats.Welford }
	blocks := mc.Run(reps, mc.DefaultBlockSize, workers, func(b mc.Block) block {
		s := dist.Substream(seed, b.Index)
		ys := make([]float64, len(mu))
		var blk block
		for r := 0; r < b.N(); r++ {
			zz := 0.0
			sum := 0.0
			for i, m := range mu {
				ys[i] = s.Exp(m)
				sum += ys[i]
				if ys[i] > zz {
					zz = ys[i]
				}
			}
			blk.z.Add(zz)
			blk.loss.Add(float64(len(mu))*zz - sum)
		}
		return blk
	})
	for _, blk := range blocks {
		loss.Merge(blk.loss)
		z.Merge(blk.z)
	}
	return loss, z, nil
}

// LossPerUnitTime converts the per-synchronization loss into a long-run
// overhead rate when synchronization requests are issued every interval time
// units (the paper's "constant interval" strategy): each cycle costs E[CL]
// lost work out of n·(interval + E[Z]) available work.
func LossPerUnitTime(mu []float64, interval float64) (float64, error) {
	if interval <= 0 || math.IsNaN(interval) || math.IsInf(interval, 0) {
		return 0, guard.Numericalf("synch: interval %v must be positive and finite", interval)
	}
	cl, err := MeanLoss(mu)
	if err != nil {
		return 0, err
	}
	ez, err := MeanMax(mu)
	if err != nil {
		return 0, err
	}
	return cl / (float64(len(mu)) * (interval + ez)), nil
}
