package synch

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanMaxEqualHarmonic(t *testing.T) {
	// n iid Exp(1): E[max] = H_n.
	want := []float64{1, 1.5, 1.5 + 1.0/3, 1.5 + 1.0/3 + 0.25}
	for n := 1; n <= 4; n++ {
		got, err := MeanMaxEqual(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want[n-1]) > 1e-12 {
			t.Fatalf("H_%d = %v, want %v", n, got, want[n-1])
		}
	}
}

func TestMeanMaxMatchesEqualCase(t *testing.T) {
	for n := 1; n <= 8; n++ {
		mu := make([]float64, n)
		for i := range mu {
			mu[i] = 1.7
		}
		incl, err := MeanMax(mu)
		if err != nil {
			t.Fatal(err)
		}
		harm, err := MeanMaxEqual(n, 1.7)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(incl-harm) > 1e-10 {
			t.Fatalf("n=%d: inclusion–exclusion %v vs harmonic %v", n, incl, harm)
		}
	}
}

func TestMeanMaxTwoProcessClosedForm(t *testing.T) {
	// E[max(Exp(a),Exp(b))] = 1/a + 1/b − 1/(a+b).
	a, b := 1.5, 0.5
	got, err := MeanMax([]float64{a, b})
	if err != nil {
		t.Fatal(err)
	}
	want := 1/a + 1/b - 1/(a+b)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("E[Z] = %v, want %v", got, want)
	}
}

func TestMeanMaxIntegralAgrees(t *testing.T) {
	for _, mu := range [][]float64{
		{1, 1, 1},
		{1.5, 1.0, 0.5},
		{0.6, 0.45, 0.45},
		{2},
		{3, 0.1},
	} {
		incl, err := MeanMax(mu)
		if err != nil {
			t.Fatal(err)
		}
		integ, err := MeanMaxIntegral(mu)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(incl-integ) > 1e-6*(1+incl) {
			t.Fatalf("μ=%v: inclusion–exclusion %v vs integral %v", mu, incl, integ)
		}
	}
}

func TestMeanLossNonNegativeAndZeroForSingle(t *testing.T) {
	// One process never waits.
	cl, err := MeanLoss([]float64{2.3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cl) > 1e-12 {
		t.Fatalf("single-process CL = %v, want 0", cl)
	}
	for _, mu := range [][]float64{{1, 1}, {1.5, 1.0, 0.5}, {1, 1, 1, 1, 1}} {
		cl, err := MeanLoss(mu)
		if err != nil {
			t.Fatal(err)
		}
		if cl <= 0 {
			t.Fatalf("μ=%v: CL = %v, want > 0", mu, cl)
		}
	}
}

func TestMeanLossGrowsWithN(t *testing.T) {
	// More processes → more waiting: for iid rates CL = n·H_n/μ − n/μ strictly grows.
	prev := -1.0
	for n := 1; n <= 10; n++ {
		mu := make([]float64, n)
		for i := range mu {
			mu[i] = 1
		}
		cl, err := MeanLoss(mu)
		if err != nil {
			t.Fatal(err)
		}
		if cl <= prev {
			t.Fatalf("CL not increasing at n=%d: %v <= %v", n, cl, prev)
		}
		prev = cl
	}
}

func TestMeanLossEqualRateClosedForm(t *testing.T) {
	// CL = n(H_n − 1)/μ for iid Exp(μ).
	n, mu := 4, 2.0
	rates := []float64{mu, mu, mu, mu}
	cl, err := MeanLoss(rates)
	if err != nil {
		t.Fatal(err)
	}
	h4 := 1 + 0.5 + 1.0/3 + 0.25
	want := float64(n) * (h4 - 1) / mu
	if math.Abs(cl-want) > 1e-12 {
		t.Fatalf("CL = %v, want %v", cl, want)
	}
}

func TestSimulateLossMatchesAnalytic(t *testing.T) {
	mu := []float64{1.5, 1.0, 0.5}
	loss, z, err := SimulateLoss(mu, 200000, 42)
	if err != nil {
		t.Fatal(err)
	}
	wantZ, err := MeanMax(mu)
	if err != nil {
		t.Fatal(err)
	}
	wantCL, err := MeanLoss(mu)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(z.Mean()-wantZ) > 3*z.CI95()+1e-3 {
		t.Fatalf("simulated E[Z] = %v ± %v, want %v", z.Mean(), z.CI95(), wantZ)
	}
	if math.Abs(loss.Mean()-wantCL) > 3*loss.CI95()+1e-3 {
		t.Fatalf("simulated CL = %v ± %v, want %v", loss.Mean(), loss.CI95(), wantCL)
	}
}

func TestLossPerUnitTime(t *testing.T) {
	mu := []float64{1, 1, 1}
	short, err := LossPerUnitTime(mu, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	long, err := LossPerUnitTime(mu, 50)
	if err != nil {
		t.Fatal(err)
	}
	if short <= long {
		t.Fatalf("frequent syncs should cost more per unit time: %v vs %v", short, long)
	}
	if short <= 0 || short >= 1 {
		t.Fatalf("overhead fraction out of range: %v", short)
	}
	if _, err := LossPerUnitTime(mu, 0); err == nil {
		t.Fatal("accepted zero interval")
	}
}

func TestValidation(t *testing.T) {
	if _, err := MeanMax(nil); err == nil {
		t.Fatal("accepted empty rates")
	}
	if _, err := MeanMax([]float64{1, 0}); err == nil {
		t.Fatal("accepted zero rate")
	}
	if _, err := MeanMaxEqual(0, 1); err == nil {
		t.Fatal("accepted n=0")
	}
	if _, _, err := SimulateLoss([]float64{1}, 0, 1); err == nil {
		t.Fatal("accepted zero reps")
	}
}

func TestMeanMaxDominatesEachMarginalProperty(t *testing.T) {
	// E[max] ≥ max_i E[y_i] and ≤ Σ_i E[y_i].
	f := func(a, b, c uint8) bool {
		mu := []float64{0.2 + float64(a%50)/10, 0.2 + float64(b%50)/10, 0.2 + float64(c%50)/10}
		ez, err := MeanMax(mu)
		if err != nil {
			return false
		}
		maxMean, sumMean := 0.0, 0.0
		for _, m := range mu {
			if 1/m > maxMean {
				maxMean = 1 / m
			}
			sumMean += 1 / m
		}
		return ez >= maxMean-1e-12 && ez <= sumMean+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
