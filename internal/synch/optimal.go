package synch

import (
	"errors"
	"math"

	"recoveryblocks/internal/guard"
)

// The paper's Section 1 poses, without solving, the question of "the optimal
// interval between two successive synchronizations". This file answers it
// under the paper's own assumptions with a renewal-reward model.
//
// A synchronization cycle with request interval τ consists of τ time units
// of useful work per process, a commitment wait costing E[CL] = n·E[Z]−Σ1/μ
// in total, and — when an error strikes (Poisson rate θ per process set) —
// a rollback that discards on average half the work accumulated since the
// last recovery line (uniform strike position within the cycle, expected
// n·τ/2 process-work units, plus the restart of the partial wait).
//
// Long-run overhead fraction:
//
//	overhead(τ) = [E[CL] + θ·(τ+E[Z])·n·τ/2] / [n·(τ + E[Z])]
//
// Small τ wastes time synchronizing; large τ exposes more work to loss.
// The minimizer balances them — precisely the trade-off Section 5 describes
// ("we weigh the trade-off between the loss of computation power during
// normal operation and the increase in response time due to rollback").

// OverheadRate returns the long-run fraction of computing power lost to
// synchronization waits plus expected rollback loss, for request interval
// tau and system error rate theta (errors per unit time striking the
// process set).
func OverheadRate(mu []float64, tau, theta float64) (float64, error) {
	if err := validateRates(mu); err != nil {
		return 0, err
	}
	if tau <= 0 || math.IsNaN(tau) || math.IsInf(tau, 0) {
		return 0, guard.Numericalf("synch: tau %v must be positive and finite", tau)
	}
	if theta < 0 || math.IsNaN(theta) || math.IsInf(theta, 0) {
		return 0, guard.Numericalf("synch: theta %v must be nonnegative and finite", theta)
	}
	n := float64(len(mu))
	cl, err := MeanLoss(mu)
	if err != nil {
		return 0, err
	}
	ez, err := MeanMax(mu)
	if err != nil {
		return 0, err
	}
	cycle := tau + ez
	lost := cl + theta*cycle*n*tau/2
	return lost / (n * cycle), nil
}

// OptimalInterval returns the synchronization request interval minimizing
// OverheadRate, found by golden-section search on the unimodal cost, along
// with the achieved overhead fraction. theta must be positive — with no
// errors the optimum is unbounded (never synchronize).
func OptimalInterval(mu []float64, theta float64) (tau, overhead float64, err error) {
	if err := validateRates(mu); err != nil {
		return 0, 0, err
	}
	if theta <= 0 || math.IsNaN(theta) || math.IsInf(theta, 0) {
		return 0, 0, errors.New("synch: theta must be positive and finite (otherwise never synchronize)")
	}
	cost := func(t float64) float64 {
		v, cerr := OverheadRate(mu, t, theta)
		if cerr != nil {
			return math.Inf(1)
		}
		return v
	}
	// Bracket: the optimum scales like sqrt(CL/θ); search a generous span.
	cl, err := MeanLoss(mu)
	if err != nil {
		return 0, 0, err
	}
	scale := math.Sqrt((cl + 1e-9) / theta)
	lo, hi := scale/1000, scale*1000
	const phi = 0.6180339887498949
	a, b := lo, hi
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	fc, fd := cost(c), cost(d)
	for i := 0; i < 200 && b-a > 1e-10*scale; i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - phi*(b-a)
			fc = cost(c)
		} else {
			a, c, fc = c, d, fd
			d = a + phi*(b-a)
			fd = cost(d)
		}
	}
	tau = (a + b) / 2
	overhead = cost(tau)
	return tau, overhead, nil
}
