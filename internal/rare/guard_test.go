package rare

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"recoveryblocks/internal/guard"
)

// TestRouterForcedFaultFallsToSplitting is the rare-event fallback-chain
// acceptance test: with the router's primary (importance sampling) rung
// forced to fail, a deep-tail estimate that would have routed to IS must
// come back from the splitting alternate — complete, labeled, and
// statistically indistinguishable from the healthy-path answer.
func TestRouterForcedFaultFallsToSplitting(t *testing.T) {
	spec := uniformSpec(3, 1)
	opt := Options{Reps: 10000, Seed: 23}
	clean, err := Run(spec, 14, opt)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Method != MethodIS {
		t.Fatalf("healthy deep tail routed to %q, want is — the fault test needs an IS baseline", clean.Method)
	}
	faulted := opt
	faulted.Ctx = guard.WithFaults(context.Background(), guard.FaultSpec{Depth: 1})
	fb, err := Run(spec, 14, faulted)
	if err != nil {
		t.Fatalf("forced-fault run failed instead of degrading: %v", err)
	}
	if fb.Method != MethodSplit {
		t.Fatalf("forced-fault run used %q, want split (note: %s)", fb.Method, fb.Note)
	}
	if !strings.Contains(fb.Note, "splitting") {
		t.Errorf("fallback note does not say how it routed: %q", fb.Note)
	}
	if fb.Prob <= 0 || fb.Prob >= 1 || fb.StdErr <= 0 {
		t.Fatalf("fallback estimate unusable: p=%v se=%v", fb.Prob, fb.StdErr)
	}
	// The alternate must agree with the healthy route to within joint
	// sampling error — the same equivalence form the xval rare grid applies.
	z := math.Abs(fb.Prob-clean.Prob) / math.Hypot(fb.StdErr, clean.StdErr)
	if z > 5 {
		t.Errorf("splitting fallback %v vs IS %v: z = %.2f", fb.Prob, clean.Prob, z)
	}
}

// TestRunCancelledContextAborts pins the budget semantics at the rare-event
// entry point: a dead context aborts with ErrBudget, never a degraded
// estimate.
func TestRunCancelledContextAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := Options{Reps: 1000, Seed: 1, Ctx: ctx}
	if _, err := Run(uniformSpec(2, 1), 8, opt); !errors.Is(err, guard.ErrBudget) {
		t.Fatalf("cancelled Run returned %v, want ErrBudget", err)
	}
}
