// Package rare is the variance-reduced estimator layer for deadline-miss
// probabilities — the tail quantities P(T > d) the paper's Section 5 argues
// about but plain Monte Carlo cannot reach: at real reliability targets
// (miss rates ≤ 1e-6) a binomial estimator needs ~1/p replications per
// significant digit, so the advisor's budgets return zero-hit estimates in
// exactly the regime that matters.
//
// The package offers three estimators behind one entry point (Run), all
// sharded over internal/mc and therefore bit-identical for every worker
// count:
//
//   - Plain Monte Carlo: the baseline binomial estimator, right whenever the
//     event is not actually rare.
//
//   - Importance sampling, reweighting each replication by its exact path
//     likelihood ratio so the estimator stays unbiased. Because every
//     category fires at a constant rate in every transient state, the
//     likelihood ratio of a path observed until time t collapses to a
//     per-category event-count form — one add in log space per event.
//
//     The automatic change of measure is a defensive mixture, because every
//     tail event in this model family is union-structured — a uniform tilt
//     of all rates is provably poor for such events (the dominant rare paths
//     retune one stream and keep the rest at nominal intensity, so tilting
//     everything puts enormous weight on paths the sampler never visits; the
//     estimate biases low at any finite budget). For the synchronized
//     disciplines the union is "some process's recovery stays unfinished
//     past the horizon": one mute component per progress category, each
//     slowing just that category. For the asynchronous discipline the union
//     adds the sustained-rollback modes — "some interaction pair fires hot
//     enough to keep tearing the recovery line down" — so reset-structured
//     specs get one boost component per reset category plus the nominal
//     measure itself as a safety net. Each replication draws its component
//     uniformly and the weight divides the nominal density by the full
//     mixture density (the balance heuristic): a path surviving via mode j
//     has bounded weight near K·P(mode j), so the relative variance stays
//     bounded at any tail depth. A caller-forced strength (-tilt) instead
//     fixes the mixture's mute strength on pure-progress specs, or applies
//     the classical symmetric exponential tilt on reset-structured ones.
//
//     Either way a control variate — the miss indicator at a shallower
//     deadline whose exact probability the caller knows from the analytic
//     model — can be fitted per run (see stats.BiWelford) to remove the
//     variance the weight shares with the shallow event.
//
//   - Fixed-effort splitting (RESTART): the horizon is cut into L level
//     boundaries; each level restarts a fixed effort of trajectories from
//     states resampled out of the previous level's survivor pool, and the
//     estimate is the product of per-level conditional survival
//     probabilities. Restarting mid-flight is exact — not an approximation —
//     because the total event rate is the same constant g in every state, so
//     the remaining holding time at a level boundary is Exp(g) regardless of
//     history.
//
// An auto-router picks between the three from a cheap pilot run: plain MC
// when the pilot already sees enough hits; splitting for reset-structured
// specs, whose quasi-stationary tail drift no constant-rate change of
// measure represents faithfully; otherwise the defensive mixture, falling
// back to splitting when the mixture pilot yields no usable estimate
// (nothing survived, or the weights underflowed at abyssal depth).
package rare

import (
	"context"
	"fmt"
	"math"

	"recoveryblocks/internal/dist"
	"recoveryblocks/internal/guard"
	"recoveryblocks/internal/obs"
	"recoveryblocks/internal/stats"
)

// Walk is the embedded jump chain of a deadline experiment: the discrete
// state the process model moves through as superposed Poisson events fire.
// Implementations must be pure — Next may not retain or mutate anything —
// and must describe a model whose event categories all fire at constant
// rate in every non-absorbed state (the property that makes the likelihood
// ratio collapse and level restarts exact; every discipline in
// internal/strategy satisfies it by construction).
type Walk interface {
	// Start returns the initial state.
	Start() int
	// Next applies one event of the given category and reports whether the
	// chain absorbed (the deadline experiment completed before the horizon).
	Next(state, cat int) (next int, absorbed bool)
}

// Spec describes one deadline experiment: the event categories with their
// nominal rates, which of them are rollback-propagating (tilted up rather
// than down), the embedded walk, and a deterministic time offset (the
// synchronized disciplines' head start τ) subtracted from the deadline
// before any simulation.
type Spec struct {
	// Rates holds the nominal per-category event rates (all ≥ 0, at least
	// one positive).
	Rates []float64
	// Reset marks the categories that delay absorption (interaction /
	// rollback-propagation events): exponential tilting scales them up by
	// e^{+β} while progress categories scale down by e^{−β}. Nil means no
	// reset categories.
	Reset []bool
	// Walk is the embedded jump chain.
	Walk Walk
	// Offset is the deterministic part of the completion time; the simulated
	// horizon is deadline − Offset, and a deadline inside the offset misses
	// with probability 1 (resolved exactly, without simulation).
	Offset float64
}

// validate rejects malformed specs before any work is spent.
func (s Spec) validate() error {
	if s.Walk == nil {
		return fmt.Errorf("rare: spec needs a walk")
	}
	if len(s.Rates) == 0 {
		return fmt.Errorf("rare: spec needs at least one event category")
	}
	if len(s.Rates) > dist.MaxAliasCategories {
		return fmt.Errorf("rare: %d event categories exceed the sampler's limit %d", len(s.Rates), dist.MaxAliasCategories)
	}
	total := 0.0
	for i, r := range s.Rates {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return fmt.Errorf("rare: category %d rate %v must be nonnegative and finite", i, r)
		}
		total += r
	}
	if total <= 0 {
		return fmt.Errorf("rare: spec needs a positive total event rate")
	}
	if s.Reset != nil && len(s.Reset) != len(s.Rates) {
		return fmt.Errorf("rare: Reset length %d must match %d categories", len(s.Reset), len(s.Rates))
	}
	if s.Offset < 0 || math.IsNaN(s.Offset) || math.IsInf(s.Offset, 0) {
		return fmt.Errorf("rare: offset %v must be nonnegative and finite", s.Offset)
	}
	return nil
}

// total returns the nominal superposed event rate g = Σ rates.
func (s Spec) total() float64 {
	g := 0.0
	for _, r := range s.Rates {
		g += r
	}
	return g
}

// hasReset reports whether any positive-rate category is rollback-
// propagating — the property that adds boost and nominal components to the
// defensive mixture, and selects the classical exponential tilt when the
// caller forces a strength.
func (s Spec) hasReset() bool {
	for i, r := range s.Reset {
		if r && s.Rates[i] > 0 {
			return true
		}
	}
	return false
}

// tilted returns the rates under exponential tilting: progress categories
// scaled by e^{−down}, reset categories by e^{+up}. An up of zero leaves
// the reset streams at nominal intensity — the better measure when resets
// do not actually drive the tail event, since tilting them only spreads
// the likelihood ratio.
func (s Spec) tilted(down, up float64) []float64 {
	fd, fu := math.Exp(-down), math.Exp(up)
	q := make([]float64, len(s.Rates))
	for i, r := range s.Rates {
		if s.Reset != nil && s.Reset[i] {
			q[i] = r * fu
		} else {
			q[i] = r * fd
		}
	}
	return q
}

// Method selects a rare-event estimator.
type Method string

const (
	// MethodAuto lets the pilot-run router choose.
	MethodAuto Method = "auto"
	// MethodMC is the plain binomial Monte Carlo estimator.
	MethodMC Method = "mc"
	// MethodIS is importance sampling by exponential tilting.
	MethodIS Method = "is"
	// MethodSplit is fixed-effort splitting over time levels.
	MethodSplit Method = "split"
	// MethodExact labels results that needed no simulation (deadline inside
	// the deterministic offset, or an analytic fallback upstream).
	MethodExact Method = "exact"
)

// Bounds on the estimator configuration. They keep a hostile or fuzzed
// options value from demanding unbounded work, and the tilt cap keeps
// e^{±β} comfortably inside double range.
const (
	// DefaultReps is the replication budget substituted for Reps = 0
	// (per-level effort for splitting).
	DefaultReps = 50_000
	// MaxReps bounds the replication budget.
	MaxReps = 100_000_000
	// MaxTilt bounds the exponential tilt β.
	MaxTilt = 30.0
	// MaxSplits bounds the splitting level count.
	MaxSplits = 64
)

// Options tunes one estimate. The zero value means: auto-routed method,
// default budget, pilot-selected tilt and level count, no target, no
// control variate, seed 0, all CPUs.
type Options struct {
	// Method picks the estimator; empty means MethodAuto.
	Method Method
	// Reps is the replication budget (splitting: per-level effort);
	// 0 means DefaultReps.
	Reps int
	// Tilt forces the importance-sampling strength β > 0 for MethodIS — the
	// symmetric exponential tilt for reset-structured specs, the
	// per-component mute strength for the mixture on pure-progress specs;
	// 0 selects the defensive mixture with adaptive strengths.
	Tilt float64
	// Splits forces the level count for MethodSplit; 0 selects it from the
	// pilot estimate.
	Splits int
	// Target is the relative 95% CI half-width the caller wants (e.g. 0.1
	// for ±10%); 0 disables the verdict. Run never loops to chase the
	// target — it reports whether the budget met it (Estimate.MetTarget).
	Target float64
	// CtrlDeadline and CtrlProb enable the control variate: the exact
	// probability P(T > CtrlDeadline) at a shallower deadline, typically
	// from a discipline's analytic Price. Both zero disables it.
	CtrlDeadline float64
	CtrlProb     float64
	// Seed pins every substream; distinct estimators must use distinct
	// seeds.
	Seed int64
	// Workers is the worker-pool size (0 = all CPUs); never changes results.
	Workers int
	// Ctx carries cancellation and any injected guard.FaultSpec into the
	// auto-router's recovery block. Nil means context.Background(). It never
	// influences which number an estimator computes — only whether the run
	// starts and which route of the router produces the estimate.
	Ctx context.Context
}

// context returns the options' context, defaulting to Background.
func (o Options) context() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// Normalize validates the options and applies defaults. It never panics,
// whatever the input — the fuzz target in this package pins that down — and
// the returned options always describe a bounded, runnable configuration.
func (o Options) Normalize() (Options, error) {
	switch o.Method {
	case "":
		o.Method = MethodAuto
	case MethodAuto, MethodMC, MethodIS, MethodSplit:
	default:
		return o, fmt.Errorf("rare: unknown method %q (want auto, mc, is or split)", o.Method)
	}
	if o.Reps < 0 || o.Reps > MaxReps {
		return o, fmt.Errorf("rare: reps = %d must be in [0, %d]", o.Reps, MaxReps)
	}
	if o.Reps == 0 {
		o.Reps = DefaultReps
	}
	if o.Reps < 2 {
		return o, fmt.Errorf("rare: reps = %d must be ≥ 2", o.Reps)
	}
	if math.IsNaN(o.Tilt) || o.Tilt < 0 || o.Tilt > MaxTilt {
		return o, fmt.Errorf("rare: tilt = %v must be in [0, %v]", o.Tilt, MaxTilt)
	}
	if o.Splits < 0 || o.Splits > MaxSplits {
		return o, fmt.Errorf("rare: splits = %d must be in [0, %d]", o.Splits, MaxSplits)
	}
	if math.IsNaN(o.Target) || math.IsInf(o.Target, 0) || o.Target < 0 {
		return o, fmt.Errorf("rare: target = %v must be nonnegative and finite", o.Target)
	}
	if math.IsNaN(o.CtrlDeadline) || math.IsInf(o.CtrlDeadline, 0) || o.CtrlDeadline < 0 {
		return o, fmt.Errorf("rare: control deadline = %v must be nonnegative and finite", o.CtrlDeadline)
	}
	if math.IsNaN(o.CtrlProb) || o.CtrlProb < 0 || o.CtrlProb > 1 {
		return o, fmt.Errorf("rare: control probability = %v must be in [0, 1]", o.CtrlProb)
	}
	if (o.CtrlDeadline > 0) != (o.CtrlProb > 0) {
		return o, fmt.Errorf("rare: control variate needs both CtrlDeadline and CtrlProb (got %v, %v)", o.CtrlDeadline, o.CtrlProb)
	}
	return o, nil
}

// Estimate is the result of one rare-event run.
type Estimate struct {
	// Prob is the final point estimate in [0, 1] (control-variate-adjusted
	// when the control was enabled and informative).
	Prob float64 `json:"prob"`
	// StdErr is the standard error of Prob.
	StdErr float64 `json:"std_err"`
	// RelHW is the relative 95% CI half-width 1.96·StdErr/Prob (+Inf when
	// Prob is zero).
	RelHW float64 `json:"rel_hw"`
	// Method is the estimator that produced the result (the routed one
	// under MethodAuto).
	Method Method `json:"method"`
	// Tilt is the applied importance-sampling strength (MethodIS only):
	// zero under the automatic defensive mixture, whose per-component
	// strengths are adaptive; the caller's forced strength otherwise.
	Tilt float64 `json:"tilt,omitempty"`
	// TiltUp is the reset up-tilt of the sampling measure (forced
	// exponential tilt on reset-structured specs only).
	TiltUp float64 `json:"tilt_up,omitempty"`
	// Splits is the level count (MethodSplit only).
	Splits int `json:"splits,omitempty"`
	// Reps is the number of replications actually spent in the main run
	// (splitting: per-level effort × levels run), excluding pilots.
	Reps int `json:"reps"`
	// Hits counts the replications that survived the horizon and so carry
	// positive weight (splitting: the last level's survivor count).
	Hits int `json:"hits"`
	// RawProb is the plain sample mean of the per-replication estimator
	// before the control-variate adjustment and clamping.
	RawProb float64 `json:"raw_prob"`
	// MeanLR is the mean full-path likelihood ratio — an unbiased estimate
	// of 1 under importance sampling, the standard sanity check on the
	// change of measure (exactly 1 for plain MC).
	MeanLR float64 `json:"mean_lr"`
	// CVCoeff is the fitted control-variate coefficient (0 when disabled).
	CVCoeff float64 `json:"cv_coeff,omitempty"`
	// Levels holds the per-level conditional survival probabilities
	// (MethodSplit only).
	Levels []float64 `json:"levels,omitempty"`
	// MetTarget reports whether RelHW met Options.Target (true when no
	// target was set).
	MetTarget bool `json:"met_target"`
	// Note carries the router's reasoning and any degenerate-case remarks.
	Note string `json:"note,omitempty"`

	// W is the per-replication estimator's accumulator (the raw,
	// pre-control moments; splitting synthesizes equivalent moments via
	// stats.FromMoments) — what harnesses judge with their z-test policy.
	W stats.Welford `json:"-"`
	// LRW is the full-path likelihood-ratio accumulator (MethodIS/MethodMC).
	LRW stats.Welford `json:"-"`
}

// relHW returns the relative 95% CI half-width for the estimate.
func relHW(prob, se float64) float64 {
	if prob <= 0 {
		return math.Inf(1)
	}
	return 1.96 * se / prob
}

// meetsTarget reports whether the half-width satisfies the target (no
// target always passes).
func meetsTarget(rhw, target float64) bool {
	return target <= 0 || rhw <= target
}

// Substream offsets separating the engine's estimators and pilots; each
// draws from its own substream family so no two runs on the same seed share
// randomness (the same discipline as internal/strategy's historical
// offsets, in a range far from theirs).
const (
	seedOffMain     = 9_016_009
	seedOffPilotMC  = 9_221_011
	seedOffTiltBase = 9_434_023
	seedOffSplit    = 9_700_003
	seedOffSplitLvl = 733_331
)

// pilot sizing: cheap relative to any production budget, large enough to
// count hits and gauge magnitudes stably.
const (
	pilotMCReps   = 4096
	pilotTiltReps = 1024
	// autoMCHits is the pilot hit count past which plain MC is declared
	// adequate: ≥ 50 hits at pilot size projects a usable relative error at
	// production size without any reweighting machinery.
	autoMCHits = 50
)

// Run estimates P(T > deadline) for the spec's experiment. The method is
// opt.Method, with MethodAuto routed from a pilot run; every simulation is
// sharded over internal/mc with substreams derived from opt.Seed, so the
// result is bit-identical for every worker count.
func Run(spec Spec, deadline float64, opt Options) (Estimate, error) {
	opt, err := opt.Normalize()
	if err != nil {
		return Estimate{}, err
	}
	if err := spec.validate(); err != nil {
		return Estimate{}, err
	}
	if math.IsNaN(deadline) || math.IsInf(deadline, 0) || deadline < 0 {
		return Estimate{}, fmt.Errorf("rare: deadline = %v must be nonnegative and finite", deadline)
	}
	if cerr := opt.context().Err(); cerr != nil {
		return Estimate{}, fmt.Errorf("rare: run cancelled: %w: %w", guard.ErrBudget, cerr)
	}
	obs.C("rare_runs_total").Inc()
	h := deadline - spec.Offset
	if h <= 0 {
		// The deterministic head start alone exceeds the deadline: the miss
		// is certain, no simulation required.
		return recordMethod(Estimate{
			Prob: 1, Method: MethodExact, MetTarget: true,
			MeanLR: 1,
			Note:   "deadline inside the deterministic offset; miss probability is exactly 1",
		}), nil
	}
	if opt.CtrlProb > 0 && (opt.CtrlDeadline <= spec.Offset || opt.CtrlDeadline >= deadline) {
		return Estimate{}, fmt.Errorf("rare: control deadline %v must lie strictly between the offset %v and the deadline %v",
			opt.CtrlDeadline, spec.Offset, deadline)
	}

	switch opt.Method {
	case MethodMC:
		est := estimateIS(spec, h, spec.Rates, opt, opt.Seed+seedOffMain)
		est.Method = MethodMC
		est.MetTarget = meetsTarget(est.RelHW, opt.Target)
		return recordMethod(est), nil
	case MethodIS:
		plan := forcedPlan(spec, opt)
		if opt.Tilt == 0 {
			plan = planIS(spec, h, opt)
		}
		est := runPlan(spec, h, plan, opt, opt.Seed+seedOffMain)
		est.Note = plan.note
		est.MetTarget = meetsTarget(est.RelHW, opt.Target)
		return recordMethod(est), nil
	case MethodSplit:
		levels := opt.Splits
		note := ""
		if levels == 0 {
			levels, note = pickSplits(spec, h, opt)
		}
		est := estimateSplit(spec, h, levels, opt)
		est.Note = joinNotes(note, est.Note)
		est.MetTarget = meetsTarget(est.RelHW, opt.Target)
		return recordMethod(est), nil
	default: // MethodAuto
		est, err := route(spec, h, opt)
		if err != nil {
			return est, err
		}
		return recordMethod(est), nil
	}
}

// recordMethod folds the estimate's resolved method into the registry — the
// router-decision accounting behind the rare_method_* counters. The routing
// is a pure function of (spec, deadline, options, seed), so the counts are
// deterministic.
func recordMethod(est Estimate) Estimate {
	reg := obs.Current()
	if reg == nil {
		return est
	}
	switch est.Method {
	case MethodExact:
		reg.Counter("rare_method_exact_total").Inc()
	case MethodMC:
		reg.Counter("rare_method_mc_total").Inc()
	case MethodIS:
		reg.Counter("rare_method_is_total").Inc()
	case MethodSplit:
		reg.Counter("rare_method_split_total").Inc()
	}
	return est
}

// route is the MethodAuto pilot logic: plain MC if the event is not
// actually rare; splitting for reset-structured specs; otherwise a recovery
// block whose primary is the defensive mixture and whose accepted alternate
// is splitting — the fallback fires when the mixture pilot yields no usable
// estimate (the primary rejects itself), when the mixture's production
// estimate fails the acceptance test, or when an injected guard.FaultSpec
// forces the primary off (the chaos solver-fault perturbation). The fallback
// notes on the natural paths are byte-identical to the pre-guard router.
func route(spec Spec, h float64, opt Options) (Estimate, error) {
	obs.C("rare_route_auto_total").Inc()
	pilotOpt := opt
	pilotOpt.Reps = min(pilotMCReps, opt.Reps)
	pilotOpt.CtrlDeadline, pilotOpt.CtrlProb = 0, 0
	pilot := estimateIS(spec, h, spec.Rates, pilotOpt, opt.Seed+seedOffPilotMC)
	hits := int(math.Round(pilot.RawProb * float64(pilot.W.N())))
	if hits >= autoMCHits {
		est := estimateIS(spec, h, spec.Rates, opt, opt.Seed+seedOffMain)
		est.Method = MethodMC
		est.Note = fmt.Sprintf("auto: plain MC (pilot saw %d hits in %d reps)", hits, pilot.W.N())
		est.MetTarget = meetsTarget(est.RelHW, opt.Target)
		return est, nil
	}
	if spec.hasReset() {
		// Reset-structured specs (the asynchronous chain) go straight to
		// splitting: their tail is governed by the chain's quasi-stationary
		// mode, a state-dependent drift no constant-rate change of measure
		// represents faithfully — every importance-sampling scheme tried
		// here (uniform tilts, pilot-scanned tilt ladders, defensive
		// mixtures over mild tilts) left seed-dependent downward outliers of
		// many standard errors at depth. Level restarts reweight nothing,
		// so splitting has no silent-bias failure mode on these chains.
		levels, lvlNote := pickSplits(spec, h, opt)
		est := estimateSplit(spec, h, levels, opt)
		est.Note = joinNotes(fmt.Sprintf("auto: splitting (MC pilot saw %d hits in %d reps; reset-structured spec); %s",
			hits, pilot.W.N(), lvlNote), est.Note)
		est.MetTarget = meetsTarget(est.RelHW, opt.Target)
		return est, nil
	}
	// reason is shared between the rungs: the primary's self-rejection writes
	// the natural-path wording, and the splitting alternate reads it to
	// compose its note. Empty when the primary never got to explain itself
	// (an injected fault skipped it, or acceptance rejected its estimate).
	reason := ""
	blk := guard.Block[Estimate]{
		Name: "rare/router",
		Primary: guard.Attempt[Estimate]{
			Name: "is-mixture",
			Run: func(context.Context) (Estimate, error) {
				plan := planIS(spec, h, opt)
				if plan.hits == 0 {
					reason = fmt.Sprintf("MC pilot saw %d hits, no usable mixture pilot estimate", hits)
					return Estimate{}, guard.Rejectedf("rare: %s", reason)
				}
				est := runPlan(spec, h, plan, opt, opt.Seed+seedOffMain)
				est.Note = joinNotes(fmt.Sprintf("auto: importance sampling (MC pilot saw %d hits in %d reps)", hits, pilot.W.N()), plan.note)
				return est, nil
			},
		},
		Alternates: []guard.Attempt[Estimate]{{
			Name: "splitting",
			Run: func(context.Context) (Estimate, error) {
				r := reason
				if r == "" {
					r = fmt.Sprintf("MC pilot saw %d hits; mixture route rejected", hits)
				}
				levels, lvlNote := pickSplits(spec, h, opt)
				est := estimateSplit(spec, h, levels, opt)
				est.Note = joinNotes(fmt.Sprintf("auto: splitting (%s); %s", r, lvlNote), est.Note)
				return est, nil
			},
		}},
		Accept: acceptEstimate,
	}
	res, err := blk.Do(opt.context())
	if err != nil {
		return Estimate{}, err
	}
	est := res.Value
	est.MetTarget = meetsTarget(est.RelHW, opt.Target)
	return est, nil
}

// acceptEstimate is the router's acceptance test: a probability estimate must
// be a number in [0, 1] with a usable (finite, nonnegative) standard error.
func acceptEstimate(est Estimate) error {
	if math.IsNaN(est.Prob) || est.Prob < 0 || est.Prob > 1 {
		return guard.Rejectedf("rare: estimate %v outside [0, 1]", est.Prob)
	}
	if math.IsNaN(est.StdErr) || math.IsInf(est.StdErr, 0) || est.StdErr < 0 {
		return guard.Rejectedf("rare: standard error %v unusable", est.StdErr)
	}
	return nil
}

// isPlan is a resolved importance-sampling configuration: down = 0 is the
// automatic defensive mixture; down > 0 forces the strength — the symmetric
// exponential tilt (down, up) on reset-structured specs, the mixture's mute
// strength on pure-progress ones.
type isPlan struct {
	down, up float64
	hits     int // the plan's pilot hit count (−1 when no pilot ran)
	note     string
}

// forcedPlan turns a caller-forced Options.Tilt into a plan: the symmetric
// tilt (resets up by the same β) for reset-structured specs, the mixture
// strength otherwise.
func forcedPlan(spec Spec, opt Options) isPlan {
	if spec.hasReset() {
		return isPlan{down: opt.Tilt, up: opt.Tilt, hits: -1,
			note: fmt.Sprintf("exponential tilt at forced strength %g", opt.Tilt)}
	}
	return isPlan{down: opt.Tilt, hits: -1,
		note: fmt.Sprintf("mute mixture at forced strength %g", opt.Tilt)}
}

// runPlan executes the importance-sampling estimator the plan describes,
// filling in the method and strength fields.
func runPlan(spec Spec, h float64, plan isPlan, opt Options, seed int64) Estimate {
	var est Estimate
	if spec.hasReset() && plan.down > 0 {
		est = estimateIS(spec, h, spec.tilted(plan.down, plan.up), opt, seed)
		est.TiltUp = plan.up
	} else {
		est = estimateMix(spec, h, plan.down, opt, seed)
	}
	est.Method = MethodIS
	est.Tilt = plan.down
	return est
}

// joinNotes concatenates two optional notes with "; ".
func joinNotes(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	}
	return a + "; " + b
}

// planIS chooses the importance-sampling configuration for the spec. A
// caller-forced strength is piloted once, just for the hit count the
// auto-router needs. Otherwise the plan is always the defensive mixture —
// its weight bound holds whichever mode dominates the tail, so there is
// nothing to scan; a pilot run supplies the hit count. (An earlier design
// scanned a ladder of exponential tilts for reset-structured specs and
// picked by pilot second moment; it was seed-unstable — a fooled candidate
// whose small pilot misses the heavy weight tail looks best precisely when
// it is worst, and on the asynchronous chain the selected measures were
// biased low by many standard errors. The mixture needs no such contest.)
// A plan whose pilot yields no usable estimate — zero hits, or weights that
// underflow to a zero mean at abyssal depth — reports zero hits so the
// auto-router falls through to splitting.
func planIS(spec Spec, h float64, opt Options) isPlan {
	pilotOpt := opt
	pilotOpt.Reps = min(pilotTiltReps, opt.Reps)
	pilotOpt.CtrlDeadline, pilotOpt.CtrlProb = 0, 0
	if opt.Tilt > 0 {
		plan := forcedPlan(spec, opt)
		plan.hits = runPlan(spec, h, plan, pilotOpt, opt.Seed+seedOffTiltBase).Hits
		return plan
	}
	est := estimateMix(spec, h, 0, pilotOpt, opt.Seed+seedOffTiltBase)
	hits := est.Hits
	if !(est.W.Mean() > 0) {
		hits = 0
	}
	return isPlan{hits: hits,
		note: fmt.Sprintf("defensive mixture at adaptive per-component strengths (pilot hits %d in %d reps)",
			est.Hits, pilotOpt.Reps)}
}

// pickSplits chooses the level count from a pilot tail estimate: levels of
// conditional survival probability around e^{−2} each balance per-level
// effort against product length. With no usable pilot estimate it falls
// back to a fixed mid-depth ladder.
func pickSplits(spec Spec, h float64, opt Options) (int, string) {
	pilotOpt := opt
	pilotOpt.Reps = min(pilotTiltReps, opt.Reps)
	pilotOpt.CtrlDeadline, pilotOpt.CtrlProb = 0, 0
	// The mixture pilot gives a rough magnitude whatever the spec's structure.
	est := estimateMix(spec, h, 0, pilotOpt, opt.Seed+seedOffTiltBase)
	p := est.RawProb
	if p <= 0 || p >= 1 {
		return 8, "splits 8 (no usable pilot estimate)"
	}
	levels := int(math.Round(-math.Log(p) / 2))
	levels = max(2, min(levels, MaxSplits))
	return levels, fmt.Sprintf("splits %d from pilot estimate %.3g", levels, p)
}
