package rare

import (
	"fmt"
	"math"

	"recoveryblocks/internal/dist"
	"recoveryblocks/internal/mc"
	"recoveryblocks/internal/stats"
)

// estimateIS runs the likelihood-ratio estimator of P(T > Offset + h) under
// a single alternative sampling measure: per replication, events fire at
// the sampling rates while the weight tracks the exact nominal-vs-sampling
// path likelihood ratio, so the weighted survival indicator is unbiased for
// the nominal probability. Because every category's rate is constant over
// the path, the ratio of a path observed until time t is
// exp(−(g−g′)t)·Π_k (r_k/q_k)^{N_k(t)} — one add in log space per event.
//
// Passing sampling == spec.Rates degenerates to plain Monte Carlo (every
// weight is exactly 1). An all-zero sampling vector is the analytic limit
// of infinite tilt: no event ever fires, every replication survives with
// the constant weight e^{−g·h} — the zero-variance change of measure when
// absorption needs no more than one event (the n = 1 closed form the tests
// pin).
//
// The replication budget is sharded over internal/mc; block b draws from
// dist.Substream(seed, b.Index) and per-block moments merge in block order,
// so the estimate is bit-identical for every worker count.
func estimateIS(spec Spec, h float64, sampling []float64, opt Options, seed int64) Estimate {
	g := spec.total()
	gq := 0.0
	for _, q := range sampling {
		gq += q
	}
	// Per-event log weight log(r_k/q_k); a category with q_k = 0 is never
	// sampled, so its entry is irrelevant.
	logRatio := make([]float64, len(sampling))
	for k, q := range sampling {
		if q > 0 {
			logRatio[k] = math.Log(spec.Rates[k] / q)
		}
	}
	var alias *dist.Alias
	if gq > 0 {
		alias = dist.NewAlias(sampling)
	}
	// Control variate: the weighted survival indicator at the shallower
	// horizon h0, whose exact mean opt.CtrlProb the caller supplied.
	h0 := opt.CtrlDeadline - spec.Offset
	useCV := opt.CtrlProb > 0 && h0 > 0 && h0 < h

	type block struct {
		bi   stats.BiWelford // (weighted hit, weighted control hit)
		lr   stats.Welford   // full-path likelihood ratio at the stopping time
		hits int
	}
	blocks := mc.Run(opt.Reps, mc.DefaultBlockSize, opt.Workers, func(b mc.Block) block {
		rng := dist.Substream(seed, b.Index)
		var res block
		for i := b.Lo; i < b.Hi; i++ {
			s := spec.Walk.Start()
			t, sumLog, c := 0.0, 0.0, 0.0
			crossed := false
			var w, lr float64
			for {
				if gq > 0 {
					t += rng.Exp(gq)
				} else {
					t = h
				}
				if useCV && !crossed && t > h0 {
					// First passage past the control horizon while alive:
					// the control's weight is the likelihood ratio of the
					// path observed up to h0 (events strictly before h0).
					crossed = true
					c = math.Exp(sumLog - (g-gq)*h0)
				}
				if t >= h {
					w = math.Exp(sumLog - (g-gq)*h)
					lr = w
					res.hits++
					break
				}
				k := alias.Pick(rng.Uint64())
				sumLog += logRatio[k]
				ns, absorbed := spec.Walk.Next(s, k)
				if absorbed {
					// The experiment completed before the horizon: the hit
					// indicator is 0, but the full-path likelihood ratio
					// (stopped at the absorption time) still feeds the
					// mean-LR sanity statistic.
					w = 0
					lr = math.Exp(sumLog - (g-gq)*t)
					break
				}
				s = ns
			}
			res.bi.Add(w, c)
			res.lr.Add(lr)
		}
		return res
	})
	var biE, biO stats.BiWelford
	var lrW stats.Welford
	hits := 0
	for i, b := range blocks {
		if i%2 == 0 {
			biE.Merge(b.bi)
		} else {
			biO.Merge(b.bi)
		}
		lrW.Merge(b.lr)
		hits += b.hits
	}
	return finishWeighted(biE, biO, lrW, hits, useCV, opt)
}

// mixComp is one component of the defensive mixture: a change of measure
// retuning category k's rate by the factor e^{logf[k]} (negative entries
// mute, positive entries boost, zero leaves the rate nominal). An all-zero
// vector is the nominal measure itself, included as a defensive component
// on reset-structured specs.
type mixComp struct {
	logf []float64
}

// mixTilts is the mild tilt ladder mixed in for reset-structured specs:
// each strength contributes a symmetric component (progress down, resets up
// by β) and a down-only one (resets nominal). The ladder is short and mild
// on purpose — the reset-sustained tail mode is governed by the chain's
// quasi-stationary dynamics, a fixed per-unit-time retuning independent of
// the horizon, and the balance heuristic interpolates between rungs.
var mixTilts = []float64{0.5, 1, 2}

// mixPlan builds the mixture for the spec. Always: one mute component per
// positive-rate progress category, strength β_k = ln(r_k·h) + 3 clamped to
// [1, MaxTilt] when forced is zero. The choice makes the muted category fire
// ≈ e^{−3} ≈ 0.05 times per replication whatever its rate or the horizon —
// silent as far as the tail event is concerned, yet frequent enough that the
// "muted category fires anyway and the path absorbs" outcome, which carries
// the estimator's balancing negative residuals, stays represented in any
// moderately sized sample. (A much stronger mute, say β = 12 at r·h = 15,
// makes that outcome a once-per-run rarity: samples that miss it are
// conditionally biased high with a standard error understated by orders of
// magnitude.)
//
// Reset-structured specs additionally mix in the mild exponential tilts of
// mixTilts and the nominal measure itself. The reset tail is a union of
// modes — some progress stream falls silent (the mute components), or the
// rollback activity stays elevated just enough to keep tearing the recovery
// line down, the chain's quasi-stationary mode, which a mild global tilt
// samples — and each mode needs a component that visits it. The nominal
// component caps every path's mixture weight at K outright, so no
// component's unvisited heavy weight tail can fake a small standard error:
// the worst case degrades toward plain MC at 1/K budget, visibly wide, never
// silently biased.
func mixPlan(spec Spec, h, forced float64) []mixComp {
	m := len(spec.Rates)
	var comps []mixComp
	for k, r := range spec.Rates {
		if r > 0 && (spec.Reset == nil || !spec.Reset[k]) {
			beta := forced
			if forced <= 0 {
				beta = math.Min(MaxTilt, math.Max(1, math.Log(r*h)+3))
			}
			logf := make([]float64, m)
			logf[k] = -beta
			comps = append(comps, mixComp{logf: logf})
		}
	}
	if !spec.hasReset() {
		return comps
	}
	for _, beta := range mixTilts {
		sym, down := make([]float64, m), make([]float64, m)
		for k, r := range spec.Rates {
			if r <= 0 {
				continue
			}
			if spec.Reset[k] {
				sym[k] = beta
			} else {
				sym[k], down[k] = -beta, -beta
			}
		}
		comps = append(comps, mixComp{logf: sym}, mixComp{logf: down})
	}
	return append(comps, mixComp{logf: make([]float64, m)})
}

// estimateMix runs the defensive-mixture importance sampler over the
// components mixPlan describes. Each replication picks a component uniformly
// and samples the path from it; the weight divides the nominal path density
// by the full mixture density (the balance heuristic), so the estimator is
// unbiased whichever component produced the path — and any path that at
// least one component samples well has bounded weight.
//
// This is the right change of measure for union-structured tail events,
// where any single sampling measure fails: the tail splits into modes (one
// process's recovery stays unfinished — the max-of-exponentials shape of
// the synchronized disciplines; sustained rollback activity keeps tearing
// the recovery line down — the quasi-stationary mode of the asynchronous
// chain), and a measure tuned to one mode puts enormous weight on the
// others' paths, which it never visits, so its estimate biases low at any
// finite budget while its empirical standard error sees nothing. Under the
// mixture, a path surviving via mode j is well covered by mode j's
// component, which bounds its weight near K·P(mode j); on reset-structured
// specs the nominal component caps every weight at K outright.
//
// Only the per-category event counts enter the weight: component c's path
// density differs from the nominal one by e^{logf_c[k]} per category-k
// event and by its total-rate exponent, so
//
//	W(path, t) = e^{−g·t} / ( (1/K)·Σ_c e^{Σ_k logf_c[k]·N_k − G_c·t} )
//
// with G_c the component's total sampling rate; the Π r_e event factors
// cancel. The sum is evaluated in log space. A forced > 0 fixes every mute
// strength (the CLI's -tilt); 0 selects the adaptive schedule.
func estimateMix(spec Spec, h, forced float64, opt Options, seed int64) Estimate {
	g := spec.total()
	m := len(spec.Rates)
	comps := mixPlan(spec, h, forced)
	kk := len(comps)
	if kk == 0 {
		// No positive-rate progress category and no resets: degenerate to
		// the plain estimator rather than failing.
		return estimateIS(spec, h, spec.Rates, opt, seed)
	}
	// gQ[c] is the total sampling rate of component c.
	gQ := make([]float64, kk)
	aliases := make([]*dist.Alias, kk)
	for c, mcp := range comps {
		q := append([]float64(nil), spec.Rates...)
		tot := 0.0
		for k := range q {
			q[k] *= math.Exp(mcp.logf[k])
			tot += q[k]
		}
		gQ[c] = tot
		aliases[c] = dist.NewAlias(q)
	}
	logK := math.Log(float64(kk))
	// term is component c's log density ratio to nominal at stopping time t
	// given the per-category event counts.
	term := func(c int, counts []int, t float64) float64 {
		l := -gQ[c] * t
		for k, nk := range counts {
			if nk != 0 {
				l += comps[c].logf[k] * float64(nk)
			}
		}
		return l
	}
	// weight computes W in log space (logsumexp over components); the two
	// passes keep it allocation-free on the replication hot path.
	weight := func(counts []int, t float64) float64 {
		mx := math.Inf(-1)
		for c := range comps {
			if l := term(c, counts, t); l > mx {
				mx = l
			}
		}
		sum := 0.0
		for c := range comps {
			sum += math.Exp(term(c, counts, t) - mx)
		}
		return math.Exp(-g*t - (mx + math.Log(sum) - logK))
	}

	h0 := opt.CtrlDeadline - spec.Offset
	useCV := opt.CtrlProb > 0 && h0 > 0 && h0 < h

	type block struct {
		bi   stats.BiWelford
		lr   stats.Welford
		hits int
	}
	blocks := mc.Run(opt.Reps, mc.DefaultBlockSize, opt.Workers, func(b mc.Block) block {
		rng := dist.Substream(seed, b.Index)
		var res block
		counts := make([]int, m)
		ctrlCounts := make([]int, m)
		for i := b.Lo; i < b.Hi; i++ {
			// The replication's sampling component, chosen uniformly.
			c := rng.Intn(kk)
			alias, gq := aliases[c], gQ[c]
			s := spec.Walk.Start()
			for j := range counts {
				counts[j] = 0
			}
			t, ctrl := 0.0, 0.0
			crossed := false
			var w, lr float64
			for {
				t += rng.Exp(gq)
				if useCV && !crossed && t > h0 {
					crossed = true
					copy(ctrlCounts, counts)
					ctrl = weight(ctrlCounts, h0)
				}
				if t >= h {
					w = weight(counts, h)
					lr = w
					res.hits++
					break
				}
				k := alias.Pick(rng.Uint64())
				counts[k]++
				ns, absorbed := spec.Walk.Next(s, k)
				if absorbed {
					w = 0
					lr = weight(counts, t)
					break
				}
				s = ns
			}
			res.bi.Add(w, ctrl)
			res.lr.Add(lr)
		}
		return res
	})
	var biE, biO stats.BiWelford
	var lrW stats.Welford
	hits := 0
	for i, b := range blocks {
		if i%2 == 0 {
			biE.Merge(b.bi)
		} else {
			biO.Merge(b.bi)
		}
		lrW.Merge(b.lr)
		hits += b.hits
	}
	return finishWeighted(biE, biO, lrW, hits, useCV, opt)
}

// finishWeighted turns the weighted-hit moments — accumulated in two halves
// by block parity — into an Estimate: the control-variate adjustment when
// enabled, the [0, 1] clamp, and the derived interval widths.
//
// The control coefficient is cross-fitted: each half's coefficient comes from
// the other half's moments, so it is independent of the data it adjusts and
// the adjusted estimator stays exactly unbiased. The usual plug-in
// c* = Cov/Var on the pooled sample carries an O(1/n) coefficient–sample
// correlation bias that is invisible ordinarily but dominates once the
// control removes almost all the variance (the rare-event regime squeezes the
// standard error by orders of magnitude, far below the plug-in bias).
// Cross-fitting cancels it at no extra simulation cost.
func finishWeighted(biE, biO stats.BiWelford, lrW stats.Welford, hits int, useCV bool, opt Options) Estimate {
	var bi stats.BiWelford
	bi.Merge(biE)
	bi.Merge(biO)
	raw := bi.MeanX()
	wx := bi.X()
	prob, se := raw, wx.StdErr()
	cv := 0.0
	switch {
	case useCV && biE.N() >= 2 && biO.N() >= 2 && biE.VarY() > 0 && biO.VarY() > 0:
		cE := biO.Cov() / biO.VarY()
		cO := biE.Cov() / biE.VarY()
		adjE := biE.MeanX() + cE*(opt.CtrlProb-biE.MeanY())
		adjO := biO.MeanX() + cO*(opt.CtrlProb-biO.MeanY())
		nE, nO := float64(biE.N()), float64(biO.N())
		n := nE + nO
		prob = (nE*adjE + nO*adjO) / n
		cv = (nE*cE + nO*cO) / n
		resVar := func(b stats.BiWelford, c float64) float64 {
			v := b.VarX() - 2*c*b.Cov() + c*c*b.VarY()
			return math.Max(v, 0)
		}
		// Var(prob) = (n_E·v_E + n_O·v_O)/n², each half's residual variance
		// evaluated at the coefficient actually applied to it.
		se = math.Sqrt(nE*resVar(biE, cE)+nO*resVar(biO, cO)) / n
	case useCV && bi.VarY() > 0:
		// A single-block run has no second half to borrow a coefficient
		// from: fall back to the pooled plug-in fit.
		cv = bi.Cov() / bi.VarY()
		prob = raw + cv*(opt.CtrlProb-bi.MeanY())
		resVar := bi.VarX() - bi.Cov()*bi.Cov()/bi.VarY()
		if resVar < 0 {
			resVar = 0
		}
		se = math.Sqrt(resVar / float64(bi.N()))
	}
	prob = math.Min(1, math.Max(0, prob))
	return Estimate{
		Prob:    prob,
		StdErr:  se,
		RelHW:   relHW(prob, se),
		Reps:    bi.N(),
		Hits:    hits,
		RawProb: raw,
		MeanLR:  lrW.Mean(),
		CVCoeff: cv,
		W:       wx,
		LRW:     lrW,
	}
}

// estimateSplit runs fixed-effort splitting over evenly spaced time levels:
// level l restarts opt.Reps trajectories from states resampled out of level
// l−1's survivor pool, and the estimate is the product of the per-level
// conditional survival probabilities. The restart is exact because the
// total event rate is the constant g in every state, so the holding time
// remaining at a level boundary is Exp(g) regardless of history; the state
// at the boundary is all a trajectory needs to carry.
//
// Determinism: level l's trajectories shard over internal/mc with substream
// base seed + seedOffSplit + l·seedOffSplitLvl; each trajectory resamples
// its start state from the pool with its own substream, and survivor pools
// concatenate in block order — so pools, level probabilities and the final
// product are bit-identical for every worker count.
func estimateSplit(spec Spec, h float64, levels int, opt Options) Estimate {
	g := spec.total()
	alias := dist.NewAlias(spec.Rates)
	span := h / float64(levels)
	pool := []int{spec.Walk.Start()}
	probs := make([]float64, 0, levels)
	prod := 1.0
	relVar := 0.0
	reps := 0
	lastHits := 0
	note := ""
	for l := 0; l < levels; l++ {
		levelSeed := opt.Seed + seedOffSplit + int64(l)*seedOffSplitLvl
		startPool := pool
		type block struct{ survivors []int }
		blocks := mc.Run(opt.Reps, mc.DefaultBlockSize, opt.Workers, func(b mc.Block) block {
			rng := dist.Substream(levelSeed, b.Index)
			var res block
			for i := b.Lo; i < b.Hi; i++ {
				s := startPool[rng.Intn(len(startPool))]
				t := 0.0
				alive := true
				for {
					t += rng.Exp(g)
					if t >= span {
						break
					}
					ns, absorbed := spec.Walk.Next(s, alias.Pick(rng.Uint64()))
					if absorbed {
						alive = false
						break
					}
					s = ns
				}
				if alive {
					res.survivors = append(res.survivors, s)
				}
			}
			return res
		})
		var survivors []int
		for _, b := range blocks {
			survivors = append(survivors, b.survivors...)
		}
		reps += opt.Reps
		p := float64(len(survivors)) / float64(opt.Reps)
		probs = append(probs, p)
		prod *= p
		if p == 0 {
			note = fmt.Sprintf("level %d of %d had no survivors; estimate degenerates to 0", l+1, levels)
			relVar = math.Inf(1)
			lastHits = 0
			break
		}
		relVar += (1 - p) / (float64(opt.Reps) * p)
		pool = survivors
		lastHits = len(survivors)
	}
	se := prod * math.Sqrt(relVar)
	if math.IsInf(relVar, 1) {
		se = 0 // a zero estimate has no usable spread; RelHW below is +Inf anyway
	}
	return Estimate{
		Prob:    prod,
		StdErr:  se,
		RelHW:   relHW(prod, se),
		Method:  MethodSplit,
		Splits:  levels,
		Reps:    reps,
		Hits:    lastHits,
		RawProb: prod,
		MeanLR:  1,
		Levels:  probs,
		Note:    note,
		// Synthetic per-replication moments matching the product estimator's
		// mean and standard error, so harnesses can judge splitting with the
		// same z-test as the streaming estimators.
		W: stats.FromMoments(opt.Reps, prod, se*se*float64(opt.Reps)),
	}
}
