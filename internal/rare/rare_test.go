package rare

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"recoveryblocks/internal/dist"
)

// firstFireWalk absorbs once every category has fired at least once: the
// embedded chain of T = max_i Exp(rate_i), whose tail 1 − MaxExpCDF is in
// closed form — the oracle for every estimator test here. With n = 1 it
// absorbs on the first event, giving the pure exponential tail e^{−μh}.
type firstFireWalk struct{ n int }

func (w firstFireWalk) Start() int { return 0 }

func (w firstFireWalk) Next(s, k int) (int, bool) {
	ns := s | 1<<k
	return ns, ns == 1<<w.n-1
}

func uniformSpec(n int, mu float64) Spec {
	rates := make([]float64, n)
	for i := range rates {
		rates[i] = mu
	}
	return Spec{Rates: rates, Walk: firstFireWalk{n: n}}
}

func maxExpTail(mu []float64, h float64) float64 { return 1 - dist.MaxExpCDF(mu, h) }

func TestPlainMCMatchesExponentialTail(t *testing.T) {
	// n = 1: P(T > h) = e^{−μh}; a moderate tail plain MC can see.
	spec := uniformSpec(1, 1)
	h := 3.0
	want := math.Exp(-h)
	est, err := Run(spec, h, Options{Method: MethodMC, Reps: 40000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if est.Method != MethodMC {
		t.Fatalf("method = %q, want mc", est.Method)
	}
	if est.MeanLR != 1 {
		t.Errorf("plain MC mean likelihood ratio = %v, want exactly 1", est.MeanLR)
	}
	// The weighted mean of unit weights is the hit fraction up to streaming
	// round-off.
	if got := float64(est.Hits) / float64(est.Reps); math.Abs(got-est.RawProb) > 1e-12 {
		t.Errorf("MC estimate %v is not the hit fraction %v", est.RawProb, got)
	}
	if z := math.Abs(est.Prob-want) / est.StdErr; z > 4.5 {
		t.Errorf("MC estimate %v vs exact %v: z = %.2f", est.Prob, want, z)
	}
}

func TestImportanceSamplingDeepTail(t *testing.T) {
	// n = 3 at h = 14: p ≈ 3e^{−14} ≈ 2.5e−6 — far beyond any plain-MC
	// budget used in tests, routine for the mute-mixture estimator (the
	// scheme MethodIS selects for this pure-progress spec).
	spec := uniformSpec(3, 1)
	h := 14.0
	want := maxExpTail([]float64{1, 1, 1}, h)
	est, err := Run(spec, h, Options{Method: MethodIS, Reps: 30000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if est.Method != MethodIS || est.Tilt != 0 {
		t.Fatalf("method = %q tilt = %v, want IS at the adaptive mixture schedule (reported tilt 0)", est.Method, est.Tilt)
	}
	if !strings.Contains(est.Note, "adaptive") {
		t.Fatalf("note %q does not mention the adaptive schedule", est.Note)
	}
	if est.StdErr <= 0 {
		t.Fatalf("IS estimate has no spread: %+v", est)
	}
	if z := math.Abs(est.Prob-want) / est.StdErr; z > 4.5 {
		t.Errorf("IS estimate %v vs exact %v: z = %.2f", est.Prob, want, z)
	}
	// The mixture's weight bound keeps the relative error tiny at a budget
	// where plain MC would essentially never see the event.
	if est.RelHW > 0.05 {
		t.Errorf("IS relative half-width %v is far above the mixture's variance bound", est.RelHW)
	}
}

func TestForcedStrengthIsUnbiased(t *testing.T) {
	// Moderate forced mixture strengths on the union-structured walk: the
	// weights are spread out (the slowed category still fires), but the
	// estimator must stay unbiased at every strength.
	spec := uniformSpec(2, 1.5)
	h := 6.0
	want := maxExpTail([]float64{1.5, 1.5}, h)
	for _, beta := range []float64{1, 2, 3} {
		est, err := Run(spec, h, Options{Method: MethodIS, Tilt: beta, Reps: 30000, Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		if est.Tilt != beta {
			t.Fatalf("tilt = %v, want forced %v", est.Tilt, beta)
		}
		if z := math.Abs(est.Prob-want) / est.StdErr; z > 4.5 {
			t.Errorf("strength %v: estimate %v vs exact %v: z = %.2f", beta, est.Prob, want, z)
		}
	}
}

func TestMeanLRSanity(t *testing.T) {
	// The full-path likelihood ratio has expectation exactly 1 under the
	// sampling measure. The diagnostic only has power when the sampler
	// still visits both outcomes, so pin it at a moderate strength where
	// absorptions are common.
	spec := uniformSpec(2, 1)
	est, err := Run(spec, 5, Options{Method: MethodIS, Tilt: 1, Reps: 40000, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	lrw := est.LRW
	if lrw.StdErr() <= 0 {
		t.Fatalf("mean-LR accumulator has no spread: %+v", est)
	}
	if z := math.Abs(est.MeanLR-1) / lrw.StdErr(); z > 6 {
		t.Errorf("mean LR = %v (SE %v): z = %.2f vs 1", est.MeanLR, lrw.StdErr(), z)
	}
}

// resetWalk is a minimal reset-structured chain: category 0 is the single
// recovery-progress stream (absorbing on fire), category 1 a rollback-
// propagation stream that does nothing — enough to exercise the
// exponential-tilt scheme and the splitting fallback.
type resetWalk struct{}

func (resetWalk) Start() int                { return 0 }
func (resetWalk) Next(s, k int) (int, bool) { return s, k == 0 }

func resetSpec() Spec {
	return Spec{Rates: []float64{1, 0.5}, Reset: []bool{false, true}, Walk: resetWalk{}}
}

func TestMixtureOnResetSpec(t *testing.T) {
	// P(T > h) = e^{−h} regardless of the no-op reset stream; the
	// defensive mixture (mute + boost + nominal components on a
	// reset-structured spec) must reproduce it, reaching depths plain MC
	// cannot.
	h := 16.0
	want := math.Exp(-h)
	est, err := Run(resetSpec(), h, Options{Method: MethodIS, Reps: 30000, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if est.Tilt != 0 || !strings.Contains(est.Note, "mixture") {
		t.Fatalf("want the adaptive defensive mixture, got: %+v", est)
	}
	if est.StdErr <= 0 || est.Prob <= 0 {
		t.Fatalf("mixture estimate degenerate: %+v", est)
	}
	if z := math.Abs(est.Prob-want) / est.StdErr; z > 4.5 {
		t.Errorf("mixture estimate %v vs exact %v: z = %.2f", est.Prob, want, z)
	}
}

func TestZeroVarianceAtOptimalChangeOfMeasure(t *testing.T) {
	// n = 1: the event {T > h} is exactly {no event before h}, so the
	// change of measure that fires nothing is optimal: every replication
	// returns the constant e^{−μh} and the estimator variance is zero.
	mu, h := 0.8, 4.0
	spec := uniformSpec(1, mu)
	opt, err := Options{Reps: 5000, Seed: 3}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	est := estimateIS(spec, h, []float64{0}, opt, opt.Seed)
	want := math.Exp(-mu * h)
	if math.Abs(est.Prob-want) > 1e-15 {
		t.Errorf("zero-variance estimate %v, want exactly %v", est.Prob, want)
	}
	if v := est.W.Variance(); v != 0 {
		t.Errorf("estimator variance = %v, want exactly 0", v)
	}
	if est.StdErr != 0 || est.RelHW != 0 {
		t.Errorf("zero-variance run reports spread: SE %v, relHW %v", est.StdErr, est.RelHW)
	}
}

func TestSplittingDeepTail(t *testing.T) {
	spec := uniformSpec(3, 1)
	h := 10.0
	want := maxExpTail([]float64{1, 1, 1}, h)
	est, err := Run(spec, h, Options{Method: MethodSplit, Splits: 5, Reps: 8000, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if est.Method != MethodSplit || est.Splits != 5 || len(est.Levels) != 5 {
		t.Fatalf("unexpected splitting shape: %+v", est)
	}
	if est.Reps != 5*8000 {
		t.Errorf("reps = %d, want per-level effort × levels", est.Reps)
	}
	for _, p := range est.Levels {
		if p <= 0 || p > 1 {
			t.Fatalf("level probability %v outside (0, 1]", p)
		}
	}
	if z := math.Abs(est.Prob-want) / est.StdErr; z > 5 {
		t.Errorf("splitting estimate %v vs exact %v: z = %.2f (SE %v)", est.Prob, want, z, est.StdErr)
	}
}

func TestEstimatesStayInUnitInterval(t *testing.T) {
	spec := uniformSpec(2, 1)
	for _, opt := range []Options{
		{Method: MethodMC, Reps: 2000, Seed: 1},
		{Method: MethodIS, Tilt: 6, Reps: 2000, Seed: 2},  // grossly over-tilted
		{Method: MethodIS, Tilt: 0.1, Reps: 500, Seed: 3}, // barely tilted
		{Method: MethodSplit, Splits: 3, Reps: 500, Seed: 4},
		{Method: MethodAuto, Reps: 2000, Seed: 5},
	} {
		for _, h := range []float64{0.1, 1, 5, 12} {
			est, err := Run(spec, h, opt)
			if err != nil {
				t.Fatal(err)
			}
			if est.Prob < 0 || est.Prob > 1 || math.IsNaN(est.Prob) {
				t.Errorf("method %v h %v: estimate %v outside [0, 1]", opt.Method, h, est.Prob)
			}
		}
	}
}

func TestControlVariateKeepsMeanAndTightensSpread(t *testing.T) {
	spec := uniformSpec(3, 1)
	h := 8.0
	mu := []float64{1, 1, 1}
	want := maxExpTail(mu, h)
	base := Options{Method: MethodIS, Tilt: 2, Reps: 40000, Seed: 19}
	plain, err := Run(spec, h, base)
	if err != nil {
		t.Fatal(err)
	}
	withCV := base
	withCV.CtrlDeadline = 5
	withCV.CtrlProb = maxExpTail(mu, 5)
	cv, err := Run(spec, h, withCV)
	if err != nil {
		t.Fatal(err)
	}
	if cv.CVCoeff == 0 {
		t.Fatal("control variate did not engage")
	}
	if z := math.Abs(cv.Prob-want) / cv.StdErr; z > 4.5 {
		t.Errorf("CV estimate %v vs exact %v: z = %.2f", cv.Prob, want, z)
	}
	if cv.StdErr > plain.StdErr {
		t.Errorf("control variate widened the spread: %v > %v", cv.StdErr, plain.StdErr)
	}
}

func TestAutoRouterPicksByRegime(t *testing.T) {
	spec := uniformSpec(3, 1)
	shallow, err := Run(spec, 2, Options{Reps: 10000, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if shallow.Method != MethodMC {
		t.Errorf("shallow deadline routed to %q, want mc (note: %s)", shallow.Method, shallow.Note)
	}
	deep, err := Run(spec, 14, Options{Reps: 10000, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if deep.Method != MethodIS {
		t.Errorf("deep deadline routed to %q, want is (note: %s)", deep.Method, deep.Note)
	}
	// A horizon so extreme that no tilt candidate ever survives routes to
	// splitting (which then reports the degenerate-depth note). The spec
	// must be reset-structured: the mute-mixture on pure-progress specs
	// always survives, so it never yields the floor to splitting.
	abyss, err := Run(resetSpec(), 8000, Options{Reps: 500, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if abyss.Method != MethodSplit {
		t.Errorf("abyssal deadline routed to %q, want split (note: %s)", abyss.Method, abyss.Note)
	}
	if !strings.Contains(abyss.Note, "auto") {
		t.Errorf("router note missing: %q", abyss.Note)
	}
}

func TestDeadlineInsideOffsetIsExact(t *testing.T) {
	spec := uniformSpec(2, 1)
	spec.Offset = 3
	est, err := Run(spec, 2.5, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if est.Method != MethodExact || est.Prob != 1 || est.StdErr != 0 || !est.MetTarget {
		t.Errorf("deadline inside offset: %+v", est)
	}
}

func TestOffsetShiftsHorizon(t *testing.T) {
	// With offset τ, P(T > d) = P(max > d − τ): the synchronized
	// disciplines' shape.
	mu := []float64{1, 1}
	spec := uniformSpec(2, 1)
	spec.Offset = 1.5
	d := 7.5
	want := maxExpTail(mu, d-spec.Offset)
	est, err := Run(spec, d, Options{Method: MethodIS, Tilt: 2, Reps: 30000, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	if z := math.Abs(est.Prob-want) / est.StdErr; z > 4.5 {
		t.Errorf("offset estimate %v vs exact %v: z = %.2f", est.Prob, want, z)
	}
}

func TestWorkerInvariance(t *testing.T) {
	spec := uniformSpec(3, 1)
	for _, opt := range []Options{
		{Method: MethodMC, Reps: 6000, Seed: 31},
		{Method: MethodIS, Reps: 6000, Seed: 31, CtrlDeadline: 4, CtrlProb: maxExpTail([]float64{1, 1, 1}, 4)},
		{Method: MethodSplit, Reps: 3000, Seed: 31},
		{Method: MethodAuto, Reps: 6000, Seed: 31},
	} {
		opt.Workers = 1
		ref, err := Run(spec, 9, opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{4, 16} {
			opt.Workers = workers
			got, err := Run(spec, 9, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref, got) {
				t.Errorf("method %v: workers=%d result differs from workers=1:\n%+v\nvs\n%+v", opt.Method, workers, got, ref)
			}
		}
	}
}

func TestTargetVerdict(t *testing.T) {
	spec := uniformSpec(1, 1)
	tight, err := Run(spec, 2, Options{Method: MethodMC, Reps: 50000, Target: 0.1, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	if !tight.MetTarget {
		t.Errorf("ample budget missed a loose target: relHW = %v", tight.RelHW)
	}
	starved, err := Run(spec, 9, Options{Method: MethodMC, Reps: 200, Target: 0.1, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	if starved.MetTarget {
		t.Errorf("starved budget claimed the target: relHW = %v", starved.RelHW)
	}
}

func TestOptionsNormalize(t *testing.T) {
	def, err := Options{}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if def.Method != MethodAuto || def.Reps != DefaultReps {
		t.Errorf("zero-value defaults: %+v", def)
	}
	bad := []Options{
		{Method: "magic"},
		{Reps: -1},
		{Reps: MaxReps + 1},
		{Tilt: math.NaN()},
		{Tilt: -1},
		{Tilt: MaxTilt + 1},
		{Splits: -2},
		{Splits: MaxSplits + 1},
		{Target: math.Inf(1)},
		{Target: -0.5},
		{CtrlDeadline: 3}, // control deadline without probability
		{CtrlProb: 0.5},   // probability without deadline
		{CtrlProb: 1.5, CtrlDeadline: 1},
		{CtrlDeadline: math.NaN(), CtrlProb: 0.1},
	}
	for _, o := range bad {
		if _, err := o.Normalize(); err == nil {
			t.Errorf("Normalize accepted %+v", o)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	good := uniformSpec(2, 1)
	cases := []struct {
		name string
		spec Spec
		d    float64
		opt  Options
	}{
		{"nil walk", Spec{Rates: []float64{1}}, 1, Options{}},
		{"no categories", Spec{Walk: firstFireWalk{n: 1}}, 1, Options{}},
		{"negative rate", Spec{Rates: []float64{-1}, Walk: firstFireWalk{n: 1}}, 1, Options{}},
		{"zero total rate", Spec{Rates: []float64{0, 0}, Walk: firstFireWalk{n: 2}}, 1, Options{}},
		{"reset shape", Spec{Rates: []float64{1}, Reset: []bool{true, false}, Walk: firstFireWalk{n: 1}}, 1, Options{}},
		{"negative offset", Spec{Rates: []float64{1}, Offset: -1, Walk: firstFireWalk{n: 1}}, 1, Options{}},
		{"NaN deadline", good, math.NaN(), Options{}},
		{"control outside span", good, 5, Options{CtrlDeadline: 7, CtrlProb: 0.1}},
		{"bad method", good, 5, Options{Method: "nope"}},
	}
	for _, c := range cases {
		if _, err := Run(c.spec, c.d, c.opt); err == nil {
			t.Errorf("%s: Run accepted bad input", c.name)
		}
	}
}
