package rare

import (
	"math"
	"testing"
)

// FuzzOptionsNormalize pins the Options contract: Normalize never panics,
// whatever the raw tilt/split/budget values, and whenever it accepts a
// configuration the result is bounded, runnable and a fixed point (so the
// CLI can parse user flags straight into Options and trust the validated
// copy). Float fields arrive as raw bits so the fuzzer reaches NaNs,
// infinities and subnormals the flag parser could produce.
func FuzzOptionsNormalize(f *testing.F) {
	f.Add("auto", 0, uint64(0), 0, uint64(0), uint64(0), uint64(0), int64(0), 0)
	f.Add("is", 5000, math.Float64bits(2.5), 0, math.Float64bits(0.1), uint64(0), uint64(0), int64(7), 4)
	f.Add("split", 100, uint64(0), 12, uint64(0), uint64(0), uint64(0), int64(-3), 1)
	f.Add("mc", MaxReps, math.Float64bits(MaxTilt), MaxSplits, math.Float64bits(1), math.Float64bits(3), math.Float64bits(0.5), int64(1), 16)
	f.Add("magic", -1, math.Float64bits(math.NaN()), -5, math.Float64bits(math.Inf(1)), math.Float64bits(-1), math.Float64bits(1.5), int64(0), -2)
	f.Fuzz(func(t *testing.T, method string, reps int, tiltBits uint64, splits int, targetBits, ctrlDBits, ctrlPBits uint64, seed int64, workers int) {
		o := Options{
			Method:       Method(method),
			Reps:         reps,
			Tilt:         math.Float64frombits(tiltBits),
			Splits:       splits,
			Target:       math.Float64frombits(targetBits),
			CtrlDeadline: math.Float64frombits(ctrlDBits),
			CtrlProb:     math.Float64frombits(ctrlPBits),
			Seed:         seed,
			Workers:      workers,
		}
		norm, err := o.Normalize()
		if err != nil {
			return // rejected is fine; rejecting without panicking is the contract
		}
		switch norm.Method {
		case MethodAuto, MethodMC, MethodIS, MethodSplit:
		default:
			t.Fatalf("Normalize accepted method %q", norm.Method)
		}
		if norm.Reps < 2 || norm.Reps > MaxReps {
			t.Fatalf("Normalize produced reps %d outside [2, %d]", norm.Reps, MaxReps)
		}
		if !(norm.Tilt >= 0 && norm.Tilt <= MaxTilt) {
			t.Fatalf("Normalize produced tilt %v outside [0, %v]", norm.Tilt, MaxTilt)
		}
		if norm.Splits < 0 || norm.Splits > MaxSplits {
			t.Fatalf("Normalize produced splits %d outside [0, %d]", norm.Splits, MaxSplits)
		}
		if !(norm.Target >= 0) || math.IsInf(norm.Target, 0) {
			t.Fatalf("Normalize produced target %v", norm.Target)
		}
		if !(norm.CtrlProb >= 0 && norm.CtrlProb <= 1) || !(norm.CtrlDeadline >= 0) || math.IsInf(norm.CtrlDeadline, 0) {
			t.Fatalf("Normalize produced control pair (%v, %v)", norm.CtrlDeadline, norm.CtrlProb)
		}
		if (norm.CtrlDeadline > 0) != (norm.CtrlProb > 0) {
			t.Fatalf("Normalize accepted a half-configured control variate: %+v", norm)
		}
		again, err := norm.Normalize()
		if err != nil || again != norm {
			t.Fatalf("Normalize is not a fixed point: %+v -> %+v (%v)", norm, again, err)
		}
	})
}

// FuzzRunConfig drives Run end to end with fuzzed estimator configuration
// on a small fixed walk: whatever the method, strength, level count,
// control pair or deadline, Run must either reject the input with an error
// or return a finite probability in [0, 1] — never panic, never NaN. The
// replication budget is folded into a small range so every fuzz execution
// stays cheap.
func FuzzRunConfig(f *testing.F) {
	f.Add("auto", 0, uint64(0), 0, math.Float64bits(4.0), uint64(0), uint64(0), int64(0))
	f.Add("is", 100, math.Float64bits(3), 0, math.Float64bits(9.0), math.Float64bits(4), math.Float64bits(0.1), int64(5))
	f.Add("split", 200, uint64(0), 7, math.Float64bits(12.0), uint64(0), uint64(0), int64(9))
	f.Add("mc", 50, uint64(0), 0, math.Float64bits(0.5), uint64(0), uint64(0), int64(2))
	f.Fuzz(func(t *testing.T, method string, reps int, tiltBits uint64, splits int, deadlineBits, ctrlDBits, ctrlPBits uint64, seed int64) {
		opt := Options{
			Method:       Method(method),
			Reps:         2 + abs(reps)%512,
			Tilt:         math.Float64frombits(tiltBits),
			Splits:       splits,
			CtrlDeadline: math.Float64frombits(ctrlDBits),
			CtrlProb:     math.Float64frombits(ctrlPBits),
			Seed:         seed,
			Workers:      1,
		}
		if opt.Splits > 8 {
			opt.Splits %= 9 // bound the per-execution work, not the shapes
		}
		deadline := math.Float64frombits(deadlineBits)
		if deadline > 64 {
			deadline = math.Mod(deadline, 64)
		}
		est, err := Run(uniformSpec(2, 1), deadline, opt)
		if err != nil {
			return
		}
		if math.IsNaN(est.Prob) || est.Prob < 0 || est.Prob > 1 {
			t.Fatalf("Run returned probability %v for %+v at deadline %v", est.Prob, opt, deadline)
		}
		if math.IsNaN(est.StdErr) || est.StdErr < 0 {
			t.Fatalf("Run returned standard error %v for %+v at deadline %v", est.StdErr, opt, deadline)
		}
	})
}

func abs(x int) int {
	if x < 0 {
		if x == math.MinInt {
			return math.MaxInt
		}
		return -x
	}
	return x
}
