package expt

import (
	"fmt"
	"strings"
	"time"

	"recoveryblocks/internal/core"
	"recoveryblocks/internal/trace"
)

// TraceResult is a runtime reproduction: a rendered history diagram plus the
// run metrics it produced.
type TraceResult struct {
	Title   string
	Diagram string
	Metrics core.Metrics
	Err     error
	// FinalStates records each process's final counter value for
	// verification by tests and examples.
	FinalStates []int64
}

// Format renders the trace with its legend and a metrics summary.
func (r *TraceResult) Format() string {
	var b strings.Builder
	b.WriteString(r.Title + "\n\n")
	b.WriteString(trace.Legend() + "\n\n")
	b.WriteString(r.Diagram)
	b.WriteString("\n")
	fmt.Fprintf(&b, "recoveries: %d   messages purged: %d   domino-to-start: %d\n",
		r.Metrics.Recoveries, r.Metrics.MessagesPurged, r.Metrics.DominoToStart)
	for i, ps := range r.Metrics.Procs {
		fmt.Fprintf(&b, "P%d: work %d (discarded %d), RPs %d, PRPs %d, conv %d, rollbacks %d, AT failures %d, conv wait %v\n",
			i+1, ps.WorkDone, ps.WorkDiscarded, ps.RPsSaved, ps.PRPsSaved,
			ps.ConversationsSaved, ps.Rollbacks, ps.ATFailures, ps.ConversationWait.Round(time.Microsecond))
	}
	return b.String()
}

func counter(v int64) core.State { return &core.Counter{V: v} }

func add(d int64) core.WorkFn {
	return func(c *core.Ctx) { c.State.(*core.Counter).V += d }
}

func pass(*core.Ctx) bool { return true }

// Figure1Domino reproduces the Figure 1 scenario: three processes
// establishing recovery points interleaved with ring interactions; P1 fails
// its fourth acceptance test, and rollback propagates through the message
// log until the system restarts from the last recovery line (the paper's
// RL2) — not from the very beginning, and not from the invalidated later
// recovery points.
func Figure1Domino(seed int64) (*TraceResult, error) {
	const n = 3
	progs := make([]core.Program, n)
	states := make([]core.State, n)
	for i := 0; i < n; i++ {
		next := (i + 1) % n
		prev := (i + n - 1) % n
		b := core.NewBuilder().
			// Stage A: independent recovery blocks — their RPs form a
			// recovery line (no interactions cross them): the paper's RL2.
			BeginBlock(fmt.Sprintf("RP%d_A", i+1), 1).
			Work("stageA", add(1)).
			EndBlock(fmt.Sprintf("AT%d_A", i+1), pass).
			// Ring interactions that entangle the processes.
			Send(next, "ring1", func(c *core.Ctx) core.Value { return c.State.(*core.Counter).V }).
			Recv(prev, "ring1", func(c *core.Ctx, v core.Value) { c.State.(*core.Counter).V += v.(int64) }).
			// Stage B: more recovery points — each invalidated by the second
			// message round that crosses them.
			BeginBlock(fmt.Sprintf("RP%d_B", i+1), 1).
			Work("stageB", add(1)).
			EndBlock(fmt.Sprintf("AT%d_B", i+1), pass).
			Send(next, "ring2", func(c *core.Ctx) core.Value { return c.State.(*core.Counter).V }).
			Recv(prev, "ring2", func(c *core.Ctx, v core.Value) { c.State.(*core.Counter).V += v.(int64) })
		// Backward acknowledgement chain P3 → P2 → P1: P1 proceeds to its
		// failing stage only after every process has provably consumed the
		// ring2 message that its rollback will orphan — this is what makes
		// the propagation of Figure 1 deterministic rather than a race.
		switch i {
		case 2:
			b.Send(prev, "ack", func(*core.Ctx) core.Value { return int64(0) })
		case 1:
			b.Recv(next, "ack", func(*core.Ctx, core.Value) {}).
				Send(prev, "ack", func(*core.Ctx) core.Value { return int64(0) })
		case 0:
			// Stage C only in P1, whose acceptance test AT1_4 fails once.
			b.Recv(next, "ack", func(*core.Ctx, core.Value) {}).
				BeginBlock("RP1_C", 1).
				Work("stageC", add(1)).
				EndBlock("AT1_4", pass)
		}
		b.Work("tail", add(1))
		progs[i] = b.MustBuild()
		states[i] = counter(0)
	}
	// P1's final acceptance test fails on its first evaluation (pc 13 = the
	// EndBlock closing RP1_C, after the ack receive at pc 10).
	at := core.NewATPlan(core.ATOverride{Proc: 0, PC: 13, Fails: 1})
	sys, err := core.New(core.Config{
		Strategy: core.StrategyAsync,
		Seed:     seed,
		ATs:      at,
		Trace:    true,
		Timeout:  20 * time.Second,
	}, progs, states)
	if err != nil {
		return nil, err
	}
	m, runErr := sys.Run()
	res := &TraceResult{
		Title:   "Figure 1 — history diagram: P1 fails AT1_4; rollback propagates to the last recovery line",
		Diagram: sys.Trace().Render(),
		Metrics: m,
		Err:     runErr,
	}
	for _, st := range sys.FinalStates() {
		res.FinalStates = append(res.FinalStates, st.(*core.Counter).V)
	}
	return res, runErr
}

// Figure7SyncTrace reproduces Figure 7: processes reach their acceptance
// tests at different times after a synchronization request; each sets its
// ready flag and waits for the others' commitments; the recovery line forms
// at the common test line and the waiting is the computation loss CL.
func Figure7SyncTrace(seed int64) (*TraceResult, error) {
	const n = 3
	progs := make([]core.Program, n)
	states := make([]core.State, n)
	for i := 0; i < n; i++ {
		b := core.NewBuilder()
		// Different amounts of work before the test line: y_i differs, so
		// the earlier arrivals wait (the paper's y_i / Z picture).
		for k := 0; k <= 2*i; k++ {
			b.Work(fmt.Sprintf("y%d_%d", i+1, k), add(1))
		}
		b.Conversation("test-line-1", pass)
		for k := 0; k <= i; k++ {
			b.Work(fmt.Sprintf("z%d_%d", i+1, k), add(1))
		}
		b.Conversation("test-line-2", pass)
		progs[i] = b.MustBuild()
		states[i] = counter(0)
	}
	sys, err := core.New(core.Config{
		Strategy: core.StrategyAsync,
		Seed:     seed,
		Trace:    true,
		Timeout:  20 * time.Second,
	}, progs, states)
	if err != nil {
		return nil, err
	}
	m, runErr := sys.Run()
	res := &TraceResult{
		Title:   "Figure 7 — establishment of recovery lines upon synchronization requests",
		Diagram: sys.Trace().Render(),
		Metrics: m,
		Err:     runErr,
	}
	for _, st := range sys.FinalStates() {
		res.FinalStates = append(res.FinalStates, st.(*core.Counter).V)
	}
	return res, runErr
}

// Figure8PRPTrace reproduces Figure 8: every recovery point implants PRPs in
// the other processes; when P3 detects a propagated error at its acceptance
// test, the system restarts from the pseudo recovery line (RP, PRP, PRP) —
// bounded rollback without synchronization.
func Figure8PRPTrace(seed int64) (*TraceResult, error) {
	const n = 3
	progs := make([]core.Program, n)
	states := make([]core.State, n)
	for i := 0; i < n; i++ {
		next := (i + 1) % n
		prev := (i + n - 1) % n
		b := core.NewBuilder().
			BeginBlock(fmt.Sprintf("RP%d_1", i+1), 1).
			Work("round1", add(1)).
			EndBlock(fmt.Sprintf("AT%d_1", i+1), pass).
			Send(next, "m1", func(c *core.Ctx) core.Value { return c.State.(*core.Counter).V }).
			Recv(prev, "m1", func(c *core.Ctx, v core.Value) { c.State.(*core.Counter).V += v.(int64) }).
			BeginBlock(fmt.Sprintf("RP%d_2", i+1), 1).
			Work("round2", add(1)).
			EndBlock(fmt.Sprintf("AT%d_2", i+1), pass).
			Work("tail", add(1))
		progs[i] = b.MustBuild()
		states[i] = counter(0)
	}
	// P3 detects an error that propagated from another process right after
	// its second block's acceptance test position (pc 8 = the tail work).
	faults := core.NewFaultPlan(core.Fault{Proc: 2, PC: 8, Visit: 1, Kind: core.FaultPropagated})
	sys, err := core.New(core.Config{
		Strategy: core.StrategyPRP,
		Seed:     seed,
		Faults:   faults,
		Trace:    true,
		Timeout:  20 * time.Second,
	}, progs, states)
	if err != nil {
		return nil, err
	}
	m, runErr := sys.Run()
	res := &TraceResult{
		Title:   "Figure 8 — pseudo recovery points and the restart line after P3's failure",
		Diagram: sys.Trace().Render(),
		Metrics: m,
		Err:     runErr,
	}
	for _, st := range sys.FinalStates() {
		res.FinalStates = append(res.FinalStates, st.(*core.Counter).V)
	}
	return res, runErr
}
