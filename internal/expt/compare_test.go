package expt

import (
	"strings"
	"testing"

	"recoveryblocks/internal/strategy"
)

// TestCompareStrategiesCoversRegistry: the table must carry one row per
// registered discipline (one per k for sync-every-k), ranked by overhead.
func TestCompareStrategiesCoversRegistry(t *testing.T) {
	ks := []int{1, 2, 4}
	res, err := CompareStrategies(ks)
	if err != nil {
		t.Fatal(err)
	}
	want := len(strategy.All()) - 1 + len(ks)
	if len(res.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(res.Rows), want)
	}
	seen := map[strategy.Name]int{}
	prev := -1.0
	for _, row := range res.Rows {
		seen[row.Strategy]++
		if row.Metrics.OverheadRate < prev {
			t.Fatalf("rows not ranked by overhead: %v after %v", row.Metrics.OverheadRate, prev)
		}
		prev = row.Metrics.OverheadRate
	}
	for _, st := range strategy.All() {
		if seen[st.Name()] == 0 {
			t.Errorf("registered strategy %s missing from the comparison", st.Name())
		}
	}
	if seen[strategy.SyncEveryK] != len(ks) {
		t.Errorf("sync-every-k rows = %d, want %d", seen[strategy.SyncEveryK], len(ks))
	}
}

// TestCompareEveryKDegeneracy: the k = 1 row must price identically to the
// sync row (the registry's acceptance identity, visible at the experiment
// layer).
func TestCompareEveryKDegeneracy(t *testing.T) {
	res, err := CompareStrategies([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	var syncRate, k1Rate float64
	for _, row := range res.Rows {
		switch {
		case row.Strategy == strategy.Sync:
			syncRate = row.Metrics.OverheadRate
		case row.Strategy == strategy.SyncEveryK && row.Metrics.EveryK == 1:
			k1Rate = row.Metrics.OverheadRate
		}
	}
	if syncRate == 0 || k1Rate == 0 {
		t.Fatalf("rows missing: sync %v, k1 %v", syncRate, k1Rate)
	}
	if d := syncRate - k1Rate; d > 1e-8 || d < -1e-8 {
		t.Fatalf("k=1 overhead %v differs from sync %v", k1Rate, syncRate)
	}
}

func TestCompareFormatMentionsEveryRow(t *testing.T) {
	res, err := CompareStrategies(nil)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Format()
	for _, want := range []string{"async", "sync", "prp", "sync-every-k (k=1)", "sync-every-k (k=4)", "overhead/t"} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison table missing %q:\n%s", want, out)
		}
	}
}

func TestCompareRejectsBadK(t *testing.T) {
	if _, err := CompareStrategies([]int{0}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := CompareStrategies([]int{strategy.MaxEveryK + 1}); err == nil {
		t.Fatal("k beyond MaxEveryK accepted")
	}
}
