// Package expt regenerates every table and figure of the paper's evaluation:
// Table 1 (E[X], E[L_i] for five parameter cases), Figure 5 (E[X] vs n),
// Figure 6 (the density f_X(t)), the Section 3 synchronization-loss results,
// the Section 4 PRP overhead results, the model graphs of Figures 2–4, and
// the runtime history diagrams of Figures 1, 7 and 8. Each experiment
// returns structured data plus a Format method that prints the same rows or
// series the paper reports.
package expt

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"recoveryblocks/internal/prpmodel"
	"recoveryblocks/internal/rbmodel"
	"recoveryblocks/internal/sim"
	"recoveryblocks/internal/synch"
)

// Sizes controls the Monte Carlo effort of the experiments, so benchmarks
// can run scaled-down versions of exactly the same code paths.
type Sizes struct {
	Table1Intervals int
	Fig5Intervals   int
	Fig6Intervals   int
	SyncReps        int
	PRPProbes       int
	Seed            int64
	// Workers sets the Monte Carlo worker-pool size used by every
	// simulation an experiment runs: n > 0 means exactly n goroutines,
	// anything else means runtime.NumCPU().
	//
	// The RNG-stream contract (see internal/mc and internal/dist): each
	// experiment shards its replications into fixed-size blocks, block b of
	// a simulation seeded s draws from dist.Substream(s, b), and the
	// per-block statistics are merged in block order. The decomposition
	// and the substreams depend only on (Seed, replication count), never on
	// Workers, so for a fixed Seed every experiment result is bit-identical
	// across worker counts — Workers trades wall-clock time only.
	Workers int
}

// DefaultSizes is the publication-quality configuration. Workers is 0, so
// experiments use all CPUs.
func DefaultSizes() Sizes {
	return Sizes{
		Table1Intervals: 200000,
		Fig5Intervals:   50000,
		Fig6Intervals:   200000,
		SyncReps:        500000,
		PRPProbes:       200000,
		Seed:            1983, // year of the paper
	}
}

// QuickSizes is a fast configuration for benchmarks and smoke tests.
// Workers is 0, so experiments use all CPUs.
func QuickSizes() Sizes {
	return Sizes{
		Table1Intervals: 5000,
		Fig5Intervals:   2000,
		Fig6Intervals:   5000,
		SyncReps:        20000,
		PRPProbes:       10000,
		Seed:            1983,
	}
}

// ---------------------------------------------------------------- Table 1

// Table1Row is one parameter case of Table 1.
type Table1Row struct {
	Name    string
	Mu      [3]float64
	Lambda  [3]float64 // (λ12, λ23, λ13), the paper's order
	PaperEX float64
	PaperEL [3]float64
	ExactEX float64
	ExactEL [3]float64
	SimEX   float64
	SimEXCI float64
	SimEL   [3]float64
	SplitEL [3]float64 // the paper's Y_d split-chain computation
}

// Table1Result reproduces Table 1.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 solves the five cases exactly (absorbing-chain solve and the Y_d
// split chain) and re-estimates them with the discrete-event simulator.
func Table1(sz Sizes) (*Table1Result, error) {
	res := &Table1Result{}
	for ci, c := range rbmodel.Table1Cases() {
		m, err := rbmodel.NewAsync(c.Params)
		if err != nil {
			return nil, err
		}
		ex, err := m.MeanX()
		if err != nil {
			return nil, err
		}
		wald, err := m.MeanLWald()
		if err != nil {
			return nil, err
		}
		row := Table1Row{
			Name:    c.Name,
			Mu:      [3]float64{c.Params.Mu[0], c.Params.Mu[1], c.Params.Mu[2]},
			Lambda:  [3]float64{c.Params.Lambda[0][1], c.Params.Lambda[1][2], c.Params.Lambda[0][2]},
			PaperEX: c.PaperEX,
			PaperEL: c.PaperEL,
			ExactEX: ex,
		}
		copy(row.ExactEL[:], wald)
		for t := 0; t < 3; t++ {
			sc, err := rbmodel.NewSplitChain(c.Params, t)
			if err != nil {
				return nil, err
			}
			l, err := sc.MeanL()
			if err != nil {
				return nil, err
			}
			row.SplitEL[t] = l
		}
		sr, err := sim.SimulateAsync(c.Params, sim.AsyncOptions{
			Intervals: sz.Table1Intervals,
			Seed:      sz.Seed + int64(ci),
			Workers:   sz.Workers,
		})
		if err != nil {
			return nil, err
		}
		row.SimEX = sr.X.Mean()
		row.SimEXCI = sr.X.CI95()
		for t := 0; t < 3; t++ {
			row.SimEL[t] = sr.L[t].Mean()
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Format renders the reproduction next to the paper's numbers.
func (r *Table1Result) Format() string {
	var b strings.Builder
	b.WriteString("Table 1 — Mean values of X and L_i for constant rho = 2 (n = 3)\n")
	b.WriteString("  exact  = absorbing-chain solution of the paper's own model\n")
	b.WriteString("  split  = the paper's Y_d split-chain computation (Fig. 4)\n")
	b.WriteString("  sim    = discrete-event simulation (95% CI on E[X])\n\n")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "case\t(mu1,mu2,mu3)\t(l12,l23,l13)\tE(X) paper\tE(X) exact\tE(X) sim\tE(L) paper\tE(L) exact\tE(L) split\tE(L) sim\tsum exact")
	for _, row := range r.Rows {
		sum := row.ExactEL[0] + row.ExactEL[1] + row.ExactEL[2]
		fmt.Fprintf(w, "%s\t(%.1f,%.1f,%.1f)\t(%.1f,%.1f,%.1f)\t%.3f\t%.4f\t%.4f±%.4f\t%.3f,%.3f,%.3f\t%.3f,%.3f,%.3f\t%.3f,%.3f,%.3f\t%.3f,%.3f,%.3f\t%.4f\n",
			row.Name,
			row.Mu[0], row.Mu[1], row.Mu[2],
			row.Lambda[0], row.Lambda[1], row.Lambda[2],
			row.PaperEX, row.ExactEX, row.SimEX, row.SimEXCI,
			row.PaperEL[0], row.PaperEL[1], row.PaperEL[2],
			row.ExactEL[0], row.ExactEL[1], row.ExactEL[2],
			row.SplitEL[0], row.SplitEL[1], row.SplitEL[2],
			row.SimEL[0], row.SimEL[1], row.SimEL[2],
			sum)
	}
	w.Flush()
	b.WriteString("\nNotes: the paper's E(X) column is its own simulation estimate; our exact\n")
	b.WriteString("solution of the identical chain is the reference. Our exact E(L_i) match the\n")
	b.WriteString("paper's published E(L_i) to all printed digits in every case, except case 5's\n")
	b.WriteString("E(L2)=3.111, a typo for 3.311 (the paper's own sum row 9.933 requires 3.311).\n")
	return b.String()
}

// ---------------------------------------------------------------- Figure 5

// Fig5Point is E[X] at one (n, ρ).
type Fig5Point struct {
	N       int
	Rho     float64
	Lambda  float64 // per-pair rate implied by ρ with μ = 1
	ExactEX float64 // full 2^n-state model (n ≤ exact cutoff), else NaN
	LumpEX  float64 // symmetric lumped model
	SimEX   float64 // DES estimate (0 when skipped)
	SimCI   float64
}

// Fig5Result reproduces Figure 5: E[X] against the number of processes for
// fixed ρ (μ_i = 1, λ_ij = ρ/(n−1) so that ρ = 2Σλ/Σμ stays constant).
type Fig5Result struct {
	Points    []Fig5Point
	ExactUpTo int
}

// Figure5 sweeps n for each ρ. The full model is solved exactly up to
// exactUpTo processes (state space 2^n+1); the lumped model covers every n;
// the simulator cross-checks a subset.
func Figure5(ns []int, rhos []float64, exactUpTo int, sz Sizes) (*Fig5Result, error) {
	res := &Fig5Result{ExactUpTo: exactUpTo}
	for _, rho := range rhos {
		for _, n := range ns {
			if n < 2 {
				return nil, fmt.Errorf("expt: Figure5 needs n ≥ 2, got %d", n)
			}
			lambda := rho / float64(n-1)
			pt := Fig5Point{N: n, Rho: rho, Lambda: lambda}
			sym, err := rbmodel.NewSymmetric(n, 1, lambda)
			if err != nil {
				return nil, err
			}
			if pt.LumpEX, err = sym.MeanX(); err != nil {
				return nil, err
			}
			if n <= exactUpTo {
				full, err := rbmodel.NewAsync(rbmodel.Uniform(n, 1, lambda))
				if err != nil {
					return nil, err
				}
				if pt.ExactEX, err = full.MeanX(); err != nil {
					return nil, err
				}
			}
			if sz.Fig5Intervals > 0 && n <= exactUpTo {
				sr, err := sim.SimulateAsync(rbmodel.Uniform(n, 1, lambda), sim.AsyncOptions{
					Intervals: sz.Fig5Intervals, Seed: sz.Seed + int64(100*n),
					Workers: sz.Workers,
				})
				if err != nil {
					return nil, err
				}
				pt.SimEX = sr.X.Mean()
				pt.SimCI = sr.X.CI95()
			}
			res.Points = append(res.Points, pt)
		}
	}
	return res, nil
}

// Format renders the sweep as the Figure 5 series.
func (r *Fig5Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 5 — Mean value of X vs number of processes n (mu_i = 1, lambda = rho/(n-1))\n\n")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "rho\tn\tlambda\tE(X) full exact\tE(X) lumped\tE(X) sim")
	for _, p := range r.Points {
		exact := "-"
		if p.ExactEX != 0 {
			exact = fmt.Sprintf("%.4f", p.ExactEX)
		}
		simv := "-"
		if p.SimEX != 0 {
			simv = fmt.Sprintf("%.4f±%.4f", p.SimEX, p.SimCI)
		}
		fmt.Fprintf(w, "%.2f\t%d\t%.4f\t%s\t%.4f\t%s\n", p.Rho, p.N, p.Lambda, exact, p.LumpEX, simv)
	}
	w.Flush()
	b.WriteString("\nThe sharp growth of E[X] with n at fixed rho is the paper's headline\n")
	b.WriteString("observation: recovery lines become rare as more processes must align.\n")
	return b.String()
}

// ---------------------------------------------------------------- Figure 6

// Fig6Series is the density curve of one parameter case.
type Fig6Series struct {
	Name    string
	Times   []float64
	Density []float64 // analytic f_X(t) by uniformization
	SimDens []float64 // simulated histogram density at the same points
	KS      float64   // KS distance between simulated samples and analytic CDF
	KSCrit  float64
	ExactEX float64
}

// Fig6Result reproduces Figure 6.
type Fig6Result struct {
	Series []Fig6Series
}

// Figure6 evaluates the density f_X(t) of the three Figure 6 parameter
// cases on a grid over [0, tmax] and overlays a simulated histogram.
func Figure6(points int, tmax float64, sz Sizes) (*Fig6Result, error) {
	if points < 2 || tmax <= 0 {
		return nil, fmt.Errorf("expt: bad Figure6 grid (%d points, tmax %v)", points, tmax)
	}
	res := &Fig6Result{}
	for ci, c := range rbmodel.Fig6Cases() {
		m, err := rbmodel.NewAsync(c.Params)
		if err != nil {
			return nil, err
		}
		times := make([]float64, points)
		for i := range times {
			times[i] = tmax * float64(i) / float64(points-1)
		}
		s := Fig6Series{Name: c.Name, Times: times, Density: m.DensityX(times)}
		if s.ExactEX, err = m.MeanX(); err != nil {
			return nil, err
		}
		sr, err := sim.SimulateAsync(c.Params, sim.AsyncOptions{
			Intervals:   sz.Fig6Intervals,
			Seed:        sz.Seed + int64(10*ci),
			HistMax:     tmax,
			HistBins:    points - 1,
			KeepSamples: true,
			Workers:     sz.Workers,
		})
		if err != nil {
			return nil, err
		}
		dens := sr.Hist.Density()
		s.SimDens = make([]float64, points)
		for i := 0; i < points-1; i++ {
			s.SimDens[i] = dens[i]
		}
		if s.KS, err = sr.KSAgainstModel(m); err != nil {
			return nil, err
		}
		s.KSCrit = 1.358 / sqrtf(len(sr.Samples))
		res.Series = append(res.Series, s)
	}
	return res, nil
}

func sqrtf(n int) float64 {
	x := float64(n)
	if x <= 0 {
		return 1
	}
	// Newton iterations are plenty for a display-only critical value.
	g := x
	for i := 0; i < 40; i++ {
		g = (g + x/g) / 2
	}
	return g
}

// Format renders the density table and an ASCII plot per case.
func (r *Fig6Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 6 — Density function of X, f_x(t)\n\n")
	for _, s := range r.Series {
		fmt.Fprintf(&b, "%s   E[X] = %.4f   KS(sim vs analytic) = %.4f (95%% crit %.4f)\n",
			s.Name, s.ExactEX, s.KS, s.KSCrit)
		w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
		fmt.Fprintln(w, "t\tf(t) analytic\tf(t) simulated")
		step := len(s.Times) / 10
		if step == 0 {
			step = 1
		}
		for i := 0; i < len(s.Times); i += step {
			simv := "-"
			if i < len(s.SimDens) {
				simv = fmt.Sprintf("%.4f", s.SimDens[i])
			}
			fmt.Fprintf(w, "%.2f\t%.4f\t%s\n", s.Times[i], s.Density[i], simv)
		}
		w.Flush()
		b.WriteString(asciiPlot(s.Times, s.Density, 52, 12))
		b.WriteString("\n")
	}
	b.WriteString("The sharp peak at t -> 0+ equals the direct S_r -> S_r+1 rate (sum of mu_k),\n")
	b.WriteString("exactly the feature the paper points out in Figure 6.\n")
	return b.String()
}

// asciiPlot draws a crude y-vs-x line chart.
func asciiPlot(xs, ys []float64, width, height int) string {
	if len(xs) == 0 {
		return ""
	}
	maxY := 0.0
	for _, y := range ys {
		if y > maxY {
			maxY = y
		}
	}
	if maxY == 0 {
		maxY = 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for i, y := range ys {
		col := i * (width - 1) / (len(ys) - 1)
		row := int((y / maxY) * float64(height-1))
		if row > height-1 {
			row = height - 1
		}
		grid[height-1-row][col] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "  f(t) up to %.3f\n", maxY)
	for _, row := range grid {
		b.WriteString("  |" + string(row) + "\n")
	}
	b.WriteString("  +" + strings.Repeat("-", width) + "> t\n")
	return b.String()
}

// ---------------------------------------------------------------- Section 3

// SyncRow is one rate vector's synchronization cost.
type SyncRow struct {
	Mu      []float64
	EZExact float64
	EZInt   float64
	CLExact float64
	CLInt   float64
	CLSim   float64
	CLSimCI float64
}

// SyncGrowthRow shows the loss growth with n for identical processes.
type SyncGrowthRow struct {
	N  int
	EZ float64
	CL float64
}

// SyncResult reproduces the Section 3 analysis.
type SyncResult struct {
	Rows   []SyncRow
	Growth []SyncGrowthRow
}

// Section3 evaluates the mean computation loss CL for the paper's rate
// vectors via inclusion–exclusion, numeric integration of the paper's
// formula, and Monte Carlo; plus the growth of CL with n for μ = 1.
func Section3(sz Sizes) (*SyncResult, error) {
	res := &SyncResult{}
	for _, mu := range [][]float64{
		{1, 1, 1},
		{1.5, 1.0, 0.5},
		{0.6, 0.45, 0.45},
		{1, 1, 1, 1, 1},
	} {
		row := SyncRow{Mu: mu}
		var err error
		if row.EZExact, err = synch.MeanMax(mu); err != nil {
			return nil, err
		}
		if row.EZInt, err = synch.MeanMaxIntegral(mu); err != nil {
			return nil, err
		}
		if row.CLExact, err = synch.MeanLoss(mu); err != nil {
			return nil, err
		}
		if row.CLInt, err = synch.MeanLossIntegral(mu); err != nil {
			return nil, err
		}
		loss, _, err := synch.SimulateLossWorkers(mu, sz.SyncReps, sz.Seed, sz.Workers)
		if err != nil {
			return nil, err
		}
		row.CLSim = loss.Mean()
		row.CLSimCI = loss.CI95()
		res.Rows = append(res.Rows, row)
	}
	for n := 2; n <= 16; n *= 2 {
		mu := make([]float64, n)
		for i := range mu {
			mu[i] = 1
		}
		ez, err := synch.MeanMaxEqual(n, 1)
		if err != nil {
			return nil, err
		}
		cl, err := synch.MeanLoss(mu)
		if err != nil {
			return nil, err
		}
		res.Growth = append(res.Growth, SyncGrowthRow{N: n, EZ: ez, CL: cl})
	}
	return res, nil
}

// Format renders the Section 3 tables.
func (r *SyncResult) Format() string {
	var b strings.Builder
	b.WriteString("Section 3 — Synchronized recovery blocks: mean computation loss\n")
	b.WriteString("CL = n*E[Z] - sum(1/mu_i),  Z = max(y_1..y_n),  y_i ~ Exp(mu_i)\n\n")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "mu\tE[Z] incl-excl\tE[Z] integral\tCL exact\tCL integral\tCL simulated")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%v\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f±%.4f\n",
			row.Mu, row.EZExact, row.EZInt, row.CLExact, row.CLInt, row.CLSim, row.CLSimCI)
	}
	w.Flush()
	b.WriteString("\nGrowth with n (iid mu = 1): E[Z] = H_n, CL = n(H_n - 1)\n")
	w = tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "n\tE[Z]\tCL per synchronization")
	for _, g := range r.Growth {
		fmt.Fprintf(w, "%d\t%.4f\t%.4f\n", g.N, g.EZ, g.CL)
	}
	w.Flush()
	return b.String()
}

// ---------------------------------------------------------------- Section 4

// PRPRow is the Section 4 trade-off at one system size.
type PRPRow struct {
	N                 int
	TimeOverheadPerRP float64
	LiveStates        int
	Bound             float64 // E[sup y_i] rollback-distance bound
	SimLocal          float64 // simulated local-error distance
	SimPropagated     float64 // simulated propagated-error distance (Section 4 algorithm)
	SimAsync          float64 // simulated asynchronous rollback distance (same error stream)
	AnalyticAsyncAge  float64 // E[X^2] / 2E[X] renewal age from the exact chain
}

// PRPResult reproduces the Section 4 analysis.
type PRPResult struct {
	SaveCost float64
	Lambda   float64
	Rows     []PRPRow
}

// Section4 contrasts PRP overhead and bounded rollback against the
// asynchronous strategy's unbounded rollback, for μ = 1 and the given
// per-pair interaction rate.
func Section4(ns []int, saveCost, lambda float64, sz Sizes) (*PRPResult, error) {
	res := &PRPResult{SaveCost: saveCost, Lambda: lambda}
	for _, n := range ns {
		mu := make([]float64, n)
		for i := range mu {
			mu[i] = 1
		}
		cfg := prpmodel.Config{Mu: mu, SaveCost: saveCost}
		bound, err := cfg.RollbackDistanceBound()
		if err != nil {
			return nil, err
		}
		row := PRPRow{
			N:                 n,
			TimeOverheadPerRP: cfg.TimeOverheadPerRP(),
			LiveStates:        cfg.LiveStates(),
			Bound:             bound,
		}
		p := rbmodel.Uniform(n, 1, lambda)
		if n <= rbmodel.MaxExactProcesses {
			m, err := rbmodel.NewAsync(p)
			if err != nil {
				return nil, err
			}
			m1, m2, err := m.MomentsX()
			if err != nil {
				return nil, err
			}
			row.AnalyticAsyncAge = m2 / (2 * m1)
		}
		sr, err := sim.SimulatePRP(p, sim.PRPOptions{
			Probes:  sz.PRPProbes,
			Seed:    sz.Seed + int64(n),
			Warmup:  100,
			PLocal:  0.5,
			Workers: sz.Workers,
		})
		if err != nil {
			return nil, err
		}
		row.SimLocal = sr.LocalDistance.Mean()
		row.SimPropagated = sr.PropagatedDistance.Mean()
		row.SimAsync = sr.AsyncDistance.Mean()
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Format renders the Section 4 trade-off table.
func (r *PRPResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 4 — Pseudo recovery points (t_r = %.3f, lambda = %.2f, mu = 1)\n", r.SaveCost, r.Lambda)
	b.WriteString("overhead per RP = (n-1)*t_r;  live storage after purging ~ n^2 states;\n")
	b.WriteString("rollback distance bounded by E[sup y_i] (met with equality for Poisson RPs)\n\n")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "n\t(n-1)t_r\tlive states\tbound E[sup y]\tsim local\tsim propagated\tsim async\tasync age exact")
	for _, row := range r.Rows {
		age := "-"
		if row.AnalyticAsyncAge > 0 {
			age = fmt.Sprintf("%.4f", row.AnalyticAsyncAge)
		}
		fmt.Fprintf(w, "%d\t%.3f\t%d\t%.4f\t%.4f\t%.4f\t%.4f\t%s\n",
			row.N, row.TimeOverheadPerRP, row.LiveStates, row.Bound,
			row.SimLocal, row.SimPropagated, row.SimAsync, age)
	}
	w.Flush()
	b.WriteString("\nPRP keeps the rollback distance at the bound while the asynchronous\n")
	b.WriteString("distance (age of the recovery-line renewal process) grows with n and lambda —\n")
	b.WriteString("the paper's case for implanting PRPs when interactions are frequent.\n")
	b.WriteString("Once E[X] exceeds the simulated horizon (large n at this lambda), recovery\n")
	b.WriteString("lines stop forming within the run and the simulated async distance is\n")
	b.WriteString("horizon-limited: read it as a lower bound; the exact renewal age column\n")
	b.WriteString("shows the true scale of unbounded rollback.\n")
	return b.String()
}

// ---------------------------------------------------------------- Figures 2-4

// GraphsResult packages the machine-readable model structure of Figures 2-4.
type GraphsResult struct {
	FullDOT      string // Figure 2: CTMC for 3 processes
	FullStates   int
	SymmetricDOT string // Figure 3: lumped chain
	SymStates    int
	SplitDOT     string // Figure 4: split chain Y_d for P1
	SplitStates  int
}

// ModelGraphs builds the three model graphs for the canonical n = 3,
// μ = λ = 1 instance drawn in the paper.
func ModelGraphs() (*GraphsResult, error) {
	p := rbmodel.Uniform(3, 1, 1)
	full, err := rbmodel.NewAsync(p)
	if err != nil {
		return nil, err
	}
	sym, err := rbmodel.NewSymmetric(3, 1, 1)
	if err != nil {
		return nil, err
	}
	split, err := rbmodel.NewSplitChain(p, 0)
	if err != nil {
		return nil, err
	}
	return &GraphsResult{
		FullDOT:      full.DOT(),
		FullStates:   full.NumStates(),
		SymmetricDOT: sym.DOT(),
		SymStates:    3 + 2,
		SplitDOT:     split.DOT(),
		SplitStates:  split.NumStates(),
	}, nil
}

// Format summarizes the graphs (full DOT omitted; retrievable individually).
func (r *GraphsResult) Format() string {
	var b strings.Builder
	b.WriteString("Figures 2-4 — model structure (render the DOT with graphviz)\n\n")
	fmt.Fprintf(&b, "Figure 2: full CTMC, %d states (2^3 + 1)\n", r.FullStates)
	fmt.Fprintf(&b, "Figure 3: lumped chain, %d states (n + 2)\n", r.SymStates)
	fmt.Fprintf(&b, "Figure 4: split discrete chain Y_d for P1, %d states\n\n", r.SplitStates)
	b.WriteString(r.SymmetricDOT)
	return b.String()
}
