package expt

import (
	"math"
	"strings"
	"testing"
)

func TestTable1ReproducesPaperEL(t *testing.T) {
	res, err := Table1(QuickSizes())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// The paper's E(L) columns match our exact solutions to the printed
	// precision (0.001) — except the known case-5 E(L2) typo.
	for i, row := range res.Rows {
		for k := 0; k < 3; k++ {
			if i == 4 && k == 1 {
				// paper prints 3.111; its own sum row implies 3.311
				if math.Abs(row.ExactEL[k]-3.311) > 5e-4 {
					t.Errorf("case 5 E(L2) exact %v, want 3.311 (typo-corrected)", row.ExactEL[k])
				}
				continue
			}
			if math.Abs(row.ExactEL[k]-row.PaperEL[k]) > 5e-4 {
				t.Errorf("%s: exact E(L%d) = %v vs paper %v", row.Name, k+1, row.ExactEL[k], row.PaperEL[k])
			}
			if math.Abs(row.SplitEL[k]-row.ExactEL[k]) > 1e-6 {
				t.Errorf("%s: split chain diverges from Wald at L%d", row.Name, k+1)
			}
		}
		// Simulation within a loose band of exact at quick sizes.
		if math.Abs(row.SimEX-row.ExactEX) > 0.25 {
			t.Errorf("%s: sim E(X) = %v far from exact %v", row.Name, row.SimEX, row.ExactEX)
		}
	}
	out := res.Format()
	for _, want := range []string{"Table 1", "case 1", "case 5", "2.5000"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q", want)
		}
	}
}

func TestFigure5GrowthShape(t *testing.T) {
	res, err := Figure5([]int{2, 3, 4, 5, 6}, []float64{2.0}, 6, Sizes{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, p := range res.Points {
		if p.LumpEX <= prev {
			t.Fatalf("E[X] not growing at n=%d: %v <= %v", p.N, p.LumpEX, prev)
		}
		if p.ExactEX != 0 && math.Abs(p.ExactEX-p.LumpEX) > 1e-6*(1+p.ExactEX) {
			t.Fatalf("full vs lumped mismatch at n=%d", p.N)
		}
		prev = p.LumpEX
	}
	if !strings.Contains(res.Format(), "Figure 5") {
		t.Error("Format missing title")
	}
}

func TestFigure5RejectsBadN(t *testing.T) {
	if _, err := Figure5([]int{1}, []float64{2}, 4, Sizes{}); err == nil {
		t.Fatal("accepted n=1")
	}
}

func TestFigure6PeakAndKS(t *testing.T) {
	res, err := Figure6(41, 2.0, QuickSizes())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("%d series", len(res.Series))
	}
	for _, s := range res.Series {
		if s.Density[0] <= s.Density[len(s.Density)/2] {
			t.Errorf("%s: no sharp peak near 0", s.Name)
		}
		if s.KS > 2*s.KSCrit {
			t.Errorf("%s: KS %v way beyond critical %v", s.Name, s.KS, s.KSCrit)
		}
	}
	out := res.Format()
	if !strings.Contains(out, "Figure 6") || !strings.Contains(out, "*") {
		t.Error("Format missing plot")
	}
}

func TestSection3ClosedFormsAgree(t *testing.T) {
	res, err := Section3(QuickSizes())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if math.Abs(row.EZExact-row.EZInt) > 1e-5 {
			t.Errorf("mu=%v: E[Z] disagreement", row.Mu)
		}
		if math.Abs(row.CLSim-row.CLExact) > 5*row.CLSimCI+1e-3 {
			t.Errorf("mu=%v: CL sim %v vs exact %v", row.Mu, row.CLSim, row.CLExact)
		}
	}
	// Growth rows strictly increasing.
	prev := -1.0
	for _, g := range res.Growth {
		if g.CL <= prev {
			t.Fatalf("CL not growing at n=%d", g.N)
		}
		prev = g.CL
	}
	if !strings.Contains(res.Format(), "Section 3") {
		t.Error("Format missing title")
	}
}

func TestSection4BoundAndComparison(t *testing.T) {
	res, err := Section4([]int{2, 3, 4}, 0.05, 2.0, QuickSizes())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if math.Abs(row.SimPropagated-row.Bound) > 0.15*row.Bound {
			t.Errorf("n=%d: propagated distance %v vs bound %v", row.N, row.SimPropagated, row.Bound)
		}
		if row.SimAsync <= row.SimPropagated {
			t.Errorf("n=%d: async %v should exceed PRP %v at lambda=2", row.N, row.SimAsync, row.SimPropagated)
		}
		// The renewal-age estimator is autocorrelated within a run (probes
		// repeatedly observe the same stationary process), so at the quick
		// 10k-probe budget its effective sample size is a few hundred
		// intervals and seed-to-seed swings of ±15% are routine. A loose
		// fixed tolerance keeps this a smoke check; the statistically
		// principled version (batch-means t-test at a derived critical
		// value) runs in internal/xval on every grid.
		if row.AnalyticAsyncAge > 0 && math.Abs(row.SimAsync-row.AnalyticAsyncAge) > 0.3*row.AnalyticAsyncAge {
			t.Errorf("n=%d: async age sim %v vs exact %v", row.N, row.SimAsync, row.AnalyticAsyncAge)
		}
	}
	if !strings.Contains(res.Format(), "Section 4") {
		t.Error("Format missing title")
	}
}

func TestModelGraphs(t *testing.T) {
	res, err := ModelGraphs()
	if err != nil {
		t.Fatal(err)
	}
	if res.FullStates != 9 {
		t.Fatalf("full states = %d, want 2^3+1", res.FullStates)
	}
	if res.SplitStates != 13 {
		t.Fatalf("split states = %d", res.SplitStates)
	}
	for _, dot := range []string{res.FullDOT, res.SymmetricDOT, res.SplitDOT} {
		if !strings.HasPrefix(dot, "digraph") {
			t.Fatal("bad DOT output")
		}
	}
}

func TestFigure1DominoScenario(t *testing.T) {
	res, err := Figure1Domino(7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Recoveries < 1 {
		t.Fatal("no recovery happened")
	}
	if res.Metrics.DominoToStart != 0 {
		t.Fatal("rollback should stop at the stage-A line, not the start")
	}
	rolled := 0
	for _, ps := range res.Metrics.Procs {
		if ps.Rollbacks > 0 {
			rolled++
		}
	}
	if rolled < 2 {
		t.Fatalf("rollback propagated to %d processes, want ≥ 2", rolled)
	}
	want := []int64{8, 7, 7}
	for i, v := range res.FinalStates {
		if v != want[i] {
			t.Fatalf("P%d final = %d, want %d", i+1, v, want[i])
		}
	}
	out := res.Format()
	for _, s := range []string{"Figure 1", "[O]", "FAILS acceptance test AT1_4", "rolls back"} {
		if !strings.Contains(out, s) {
			t.Errorf("diagram missing %q", s)
		}
	}
}

func TestFigure7SyncScenario(t *testing.T) {
	res, err := Figure7SyncTrace(7)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{2, 5, 8}
	for i, v := range res.FinalStates {
		if v != want[i] {
			t.Fatalf("P%d final = %d, want %d", i+1, v, want[i])
		}
	}
	for _, ps := range res.Metrics.Procs {
		if ps.ConversationsSaved != 2 {
			t.Fatalf("conversations = %d, want 2", ps.ConversationsSaved)
		}
	}
	if !strings.Contains(res.Format(), "[=]") {
		t.Error("diagram missing test-line markers")
	}
}

func TestFigure8PRPScenario(t *testing.T) {
	res, err := Figure8PRPTrace(7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.TotalPRPs() == 0 {
		t.Fatal("no PRPs implanted")
	}
	if res.Metrics.DominoToStart != 0 {
		t.Fatal("PRP rollback must not reach the start")
	}
	want := []int64{4, 4, 4}
	for i, v := range res.FinalStates {
		if v != want[i] {
			t.Fatalf("P%d final = %d, want %d", i+1, v, want[i])
		}
	}
	out := res.Format()
	for _, s := range []string{"Figure 8", "[#]", "detects error"} {
		if !strings.Contains(out, s) {
			t.Errorf("diagram missing %q", s)
		}
	}
}

func TestTraceRenderShapes(t *testing.T) {
	res, err := Figure1Domino(3)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(res.Diagram, "\n")
	if len(lines) < 10 {
		t.Fatalf("diagram too small: %d lines", len(lines))
	}
	if !strings.Contains(lines[0], "P1") || !strings.Contains(lines[0], "P3") {
		t.Fatalf("header wrong: %q", lines[0])
	}
}

func TestTable1BitIdenticalAcrossWorkers(t *testing.T) {
	sz := QuickSizes()
	sz.Workers = 1
	base, err := Table1(sz)
	if err != nil {
		t.Fatal(err)
	}
	sz.Workers = 8
	got, err := Table1(sz)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Rows {
		b, g := base.Rows[i], got.Rows[i]
		if g.SimEX != b.SimEX || g.SimEXCI != b.SimEXCI || g.SimEL != b.SimEL {
			t.Fatalf("row %s: workers=8 simulation differs from workers=1", b.Name)
		}
	}
	if base.Format() != got.Format() {
		t.Fatal("formatted Table 1 differs across worker counts")
	}
}

func TestSection3and4BitIdenticalAcrossWorkers(t *testing.T) {
	sz := QuickSizes()
	sz.Workers = 1
	s3a, err := Section3(sz)
	if err != nil {
		t.Fatal(err)
	}
	s4a, err := Section4([]int{2, 3}, 0.05, 2.0, sz)
	if err != nil {
		t.Fatal(err)
	}
	sz.Workers = 8
	s3b, err := Section3(sz)
	if err != nil {
		t.Fatal(err)
	}
	s4b, err := Section4([]int{2, 3}, 0.05, 2.0, sz)
	if err != nil {
		t.Fatal(err)
	}
	if s3a.Format() != s3b.Format() {
		t.Fatal("Section 3 differs across worker counts")
	}
	if s4a.Format() != s4b.Format() {
		t.Fatal("Section 4 differs across worker counts")
	}
}
