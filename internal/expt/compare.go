package expt

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"recoveryblocks/internal/strategy"
)

// The strategy-comparison experiment is the registry-driven successor of the
// paper's Section 5 discussion: instead of prose weighing the three
// organizations, it prices every *registered* discipline on one canonical
// workload through strategy.Strategy.Price and tabulates the overhead
// decomposition side by side. Because it iterates the registry, a newly
// registered discipline appears in the table (and in `rbrepro strategies
// -table`) with no change to this package — the experiment layer's share of
// the one-package drop-in contract.

// CompareWorkload is the canonical workload the comparison prices: the
// paper's n = 3, ρ = 2 case with the EXPERIMENTS.md economic knobs.
func CompareWorkload() strategy.Workload {
	return strategy.Workload{
		Name:           "compare/n3-rho2",
		Mu:             []float64{1, 1, 1},
		Lambda:         [][]float64{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}},
		SyncInterval:   1,
		CheckpointCost: 0.05,
		Deadline:       3,
		ErrorRate:      0.05,
		PLocal:         0.5,
	}
}

// CompareRow is one priced discipline (one row per k for sync-every-k).
type CompareRow struct {
	Strategy strategy.Name
	Metrics  strategy.Metrics
}

// CompareResult tabulates every registered discipline on the canonical
// workload, ranked cheapest-first.
type CompareResult struct {
	Workload strategy.Workload
	Ks       []int // sync-every-k block periods priced
	Rows     []CompareRow
}

// CompareStrategies prices every registered discipline on the canonical
// workload — sync-every-k once per requested block period (nil selects
// k ∈ {1, 2, 4}) — and ranks the rows by overhead rate. Pure model
// evaluation: deterministic, no simulation.
func CompareStrategies(ks []int) (*CompareResult, error) {
	if ks == nil {
		ks = []int{1, 2, 4}
	}
	for _, k := range ks {
		if k < 1 || k > strategy.MaxEveryK {
			return nil, fmt.Errorf("expt: sync-every-k period %d must be in [1, %d]", k, strategy.MaxEveryK)
		}
	}
	w := CompareWorkload()
	res := &CompareResult{Workload: w, Ks: append([]int(nil), ks...)}
	for _, st := range strategy.All() {
		if st.Name() == strategy.SyncEveryK {
			for _, k := range ks {
				wk := w
				wk.EveryK = k
				m, err := st.Price(wk)
				if err != nil {
					return nil, fmt.Errorf("expt: pricing %s (k=%d): %w", st.Name(), k, err)
				}
				res.Rows = append(res.Rows, CompareRow{Strategy: st.Name(), Metrics: m})
			}
			continue
		}
		m, err := st.Price(w)
		if err != nil {
			return nil, fmt.Errorf("expt: pricing %s: %w", st.Name(), err)
		}
		res.Rows = append(res.Rows, CompareRow{Strategy: st.Name(), Metrics: m})
	}
	sort.SliceStable(res.Rows, func(i, j int) bool {
		a, b := res.Rows[i].Metrics, res.Rows[j].Metrics
		if a.OverheadRate != b.OverheadRate {
			return a.OverheadRate < b.OverheadRate
		}
		if a.Strategy != b.Strategy {
			return a.Strategy < b.Strategy
		}
		return a.EveryK < b.EveryK
	})
	return res, nil
}

// Format renders the comparison table.
func (r *CompareResult) Format() string {
	var b strings.Builder
	w := r.Workload
	b.WriteString("Strategy comparison — every registered discipline priced on one workload\n")
	fmt.Fprintf(&b, "n=%d  mu=1  rho=2  tau=%.4g  t_r=%.4g  theta=%.4g  deadline=%.4g\n\n",
		len(w.Mu), w.SyncInterval, w.CheckpointCost, w.ErrorRate, w.Deadline)
	tw := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "strategy\toverhead/t\tckpt\tsync\trollback\tE[rollback]\tP(miss)")
	for _, row := range r.Rows {
		m := row.Metrics
		name := string(m.Strategy)
		if m.EveryK > 0 {
			name = fmt.Sprintf("%s (k=%d)", m.Strategy, m.EveryK)
		}
		miss := "-"
		if m.DeadlineMissProb >= 0 {
			miss = fmt.Sprintf("%.6f", m.DeadlineMissProb)
		}
		fmt.Fprintf(tw, "%s\t%.6f\t%.6f\t%.6f\t%.6f\t%.4f\t%s\n",
			name, m.OverheadRate, m.CheckpointRate, m.SyncLossRate, m.RollbackRate, m.MeanRollback, miss)
	}
	tw.Flush()
	b.WriteString("\nRates are fractions of one process's computing power per unit time;\n")
	b.WriteString("see EXPERIMENTS.md (sync-every-k appendix) for the discussion.\n")
	return b.String()
}
